//! Bounded, admission-controlled cache storage for the plan plane.
//!
//! [`PlanCache`](crate::PlanCache) used to hold two unbounded
//! `Mutex<HashMap>` stores — fine for benches, fatal for a serve trace
//! with ~10^5 distinct shape classes. [`BoundedCache`] is the shared
//! replacement: a byte/entry-budgeted LRU with optional Bloom-filter
//! admission (the Stream-K++ "doorkeeper": a shape class must be seen
//! twice before it may displace resident entries) and single-flight
//! miss coalescing so two threads missing the same key never both run
//! the expensive compute (the stampede the old `or_insert` pattern
//! silently tolerated).
//!
//! The default [`CacheConfig`] is **unbounded + admit-always +
//! feedback off** — bit-for-bit the pre-refactor behavior, which is
//! what every golden/parity test pins as the control arm.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// How a [`BoundedCache`] decides whether a freshly computed value may
/// take up residence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Every computed value is inserted (classic LRU).
    Always,
    /// Bloom-filter doorkeeper over `bits` filter bits: the first time
    /// a key is computed it is *recorded but not admitted*; from its
    /// second computation on it is always admitted (the filter has no
    /// false negatives). One-off shapes therefore never evict hot
    /// entries.
    Bloom {
        /// Filter size in bits (rounded up to a power of two, min 64).
        bits: usize,
    },
}

impl AdmissionPolicy {
    /// The doorkeeper with its default filter size (1 Mi-bit = 128 KiB).
    pub fn bloom() -> Self {
        AdmissionPolicy::Bloom { bits: 1 << 20 }
    }
}

/// Feedback-loop knobs for observation-aware selection (consumed by
/// [`PlanCache`](crate::PlanCache), carried here so one `CacheConfig`
/// describes the whole plane).
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackConfig {
    /// Master switch. Off = predictions are trusted forever (the
    /// control arm; bit-identical to the pre-feedback scheduler).
    pub enabled: bool,
    /// EWMA weight of the newest observed/predicted ratio.
    pub alpha: f64,
    /// Corrections apply only when `|ratio − 1|` exceeds this, so
    /// model noise never perturbs a well-calibrated device.
    pub divergence: f64,
    /// Observations required per shape class before its ratio is
    /// trusted.
    pub min_observations: u64,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            enabled: false,
            alpha: 0.3,
            divergence: 0.1,
            min_observations: 1,
        }
    }
}

impl FeedbackConfig {
    /// The feedback arm with default tuning.
    pub fn enabled() -> Self {
        FeedbackConfig {
            enabled: true,
            ..FeedbackConfig::default()
        }
    }
}

/// Budget + admission + feedback configuration for the plan plane.
///
/// Budgets apply to **each** store a `PlanCache` owns (the tuned-plan
/// store and the cost-pass store) independently, so total plan-plane
/// residency is bounded by twice `max_bytes`.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Max resident entries per store (`None` = unbounded).
    pub max_entries: Option<usize>,
    /// Max resident bytes per store (`None` = unbounded). Entry weight
    /// is the value's [`CacheWeight`] plus the key size.
    pub max_bytes: Option<usize>,
    /// Admission policy for freshly computed values.
    pub admission: AdmissionPolicy,
    /// Observation-feedback knobs.
    pub feedback: FeedbackConfig,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: None,
            max_bytes: None,
            admission: AdmissionPolicy::Always,
            feedback: FeedbackConfig::default(),
        }
    }
}

impl CacheConfig {
    /// A byte-budgeted store with Bloom admission — the production
    /// shape for long mixed traces.
    pub fn bounded(max_bytes: usize) -> Self {
        CacheConfig {
            max_bytes: Some(max_bytes),
            admission: AdmissionPolicy::bloom(),
            ..CacheConfig::default()
        }
    }

    /// Enable the observation-feedback loop on this configuration.
    pub fn with_feedback(mut self) -> Self {
        self.feedback.enabled = true;
        self
    }
}

/// Approximate resident size of a cached value, in bytes. Bounded
/// stores charge `weight_bytes() + size_of::<K>()` per entry against
/// the byte budget.
pub trait CacheWeight {
    /// Approximate heap + inline bytes this value keeps resident.
    fn weight_bytes(&self) -> usize;
}

impl CacheWeight for Vec<u8> {
    fn weight_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.capacity()
    }
}

/// Counter snapshot of one [`BoundedCache`] store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate bytes currently resident.
    pub resident_bytes: usize,
    /// Lookups served from the store (including single-flight waits).
    pub hits: u64,
    /// Lookups that ran the compute.
    pub misses: u64,
    /// Entries displaced by the budget.
    pub evictions: u64,
    /// Computed values the admission policy declined to cache
    /// (Bloom first-sighting or oversized value).
    pub admission_rejected: u64,
    /// Concurrent misses of the same key that waited for the in-flight
    /// compute instead of duplicating it.
    pub stampedes_avoided: u64,
}

/// Two-probe Bloom filter over a power-of-two bit array. Probes derive
/// from one 64-bit hash, so a key's probe positions are stable: once
/// recorded, a key is *always* reported seen (no false negatives).
#[derive(Debug)]
struct Bloom {
    words: Vec<u64>,
    mask: usize,
}

impl Bloom {
    fn new(bits: usize) -> Self {
        let bits = bits.next_power_of_two().max(64);
        Bloom {
            words: vec![0; bits / 64],
            mask: bits - 1,
        }
    }

    fn probe(&self, bit: usize) -> bool {
        self.words[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    fn set(&mut self, bit: usize) {
        self.words[bit / 64] |= 1u64 << (bit % 64);
    }

    /// Record `h` and report whether it had (apparently) been seen
    /// before.
    fn check_and_set(&mut self, h: u64) -> bool {
        let b1 = (h as usize) & self.mask;
        let b2 = ((h >> 32) as usize ^ (h as usize).rotate_left(17)) & self.mask;
        let seen = self.probe(b1) && self.probe(b2);
        self.set(b1);
        self.set(b2);
        seen
    }
}

#[derive(Debug)]
struct Slot<V> {
    value: V,
    bytes: usize,
    /// LRU stamp — the key's position in `Inner::lru`.
    stamp: u64,
}

enum FlightState<V> {
    Pending,
    Done(V),
    Failed,
}

/// One in-flight compute, shared between the leading thread and any
/// waiters that missed the same key while it ran.
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

impl<V> Flight<V> {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        }
    }
}

struct Inner<K, V> {
    map: HashMap<K, Slot<V>>,
    /// stamp → key, oldest first. Stamps are unique (monotone tick).
    lru: BTreeMap<u64, K>,
    tick: u64,
    resident_bytes: usize,
    bloom: Option<Bloom>,
    flights: HashMap<K, Arc<Flight<V>>>,
}

/// Budgeted LRU store with Bloom admission and single-flight miss
/// coalescing. See the module docs for the design; the default
/// configuration is unbounded and admit-always, reproducing a plain
/// `HashMap` exactly (every existing counter-sequence test pins this).
pub struct BoundedCache<K, V> {
    max_entries: Option<usize>,
    max_bytes: Option<usize>,
    inner: Mutex<Inner<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    admission_rejected: AtomicU64,
    stampedes_avoided: AtomicU64,
}

/// Completes the flight on every exit path: a leader that panics
/// mid-compute must fail its flight, or waiters would block forever.
struct FlightGuard<'a, K: Hash + Eq + Clone, V: Clone> {
    cache: &'a BoundedCache<K, V>,
    key: K,
    flight: Arc<Flight<V>>,
    done: bool,
}

impl<K: Hash + Eq + Clone, V: Clone> FlightGuard<'_, K, V> {
    fn settle(&mut self, outcome: FlightState<V>) {
        self.done = true;
        self.cache.locked().flights.remove(&self.key);
        let mut st = self.flight.state.lock().unwrap_or_else(|p| p.into_inner());
        *st = outcome;
        self.flight.cv.notify_all();
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Drop for FlightGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.done {
            self.settle(FlightState::Failed);
        }
    }
}

impl<K, V> BoundedCache<K, V> {
    fn locked(&self) -> MutexGuard<'_, Inner<K, V>> {
        // A panicking worker never leaves the maps mid-update (all
        // mutations complete under one guard), so poison is recoverable.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl<K: Hash + Eq + Clone, V: Clone + CacheWeight> BoundedCache<K, V> {
    /// A store with the budget/admission knobs of `config` (its
    /// feedback section is inert at this layer).
    pub fn new(config: &CacheConfig) -> Self {
        let bloom = match config.admission {
            AdmissionPolicy::Always => None,
            AdmissionPolicy::Bloom { bits } => Some(Bloom::new(bits)),
        };
        BoundedCache {
            max_entries: config.max_entries,
            max_bytes: config.max_bytes,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                lru: BTreeMap::new(),
                tick: 0,
                resident_bytes: 0,
                bloom,
                flights: HashMap::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            admission_rejected: AtomicU64::new(0),
            stampedes_avoided: AtomicU64::new(0),
        }
    }

    /// Resident value for `key`, bumping its LRU position and the hit
    /// counter; `None` counts nothing (the caller decides whether a
    /// compute follows).
    pub fn get(&self, key: &K) -> Option<V> {
        let mut inner = self.locked();
        let v = Self::lookup(&mut inner, key)?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(v)
    }

    fn lookup(inner: &mut Inner<K, V>, key: &K) -> Option<V> {
        inner.tick += 1;
        let tick = inner.tick;
        let slot = inner.map.get_mut(key)?;
        let old = std::mem::replace(&mut slot.stamp, tick);
        let value = slot.value.clone();
        inner.lru.remove(&old);
        inner.lru.insert(tick, key.clone());
        Some(value)
    }

    /// The cached value for `key`, running `compute` on a miss. Returns
    /// the value and whether it was served without computing.
    ///
    /// Misses are **single-flight**: concurrent misses of the same key
    /// elect one leader to run `compute`; the rest wait on the in-flight
    /// entry and count a hit plus `stampedes_avoided`. The leader counts
    /// its miss *before* computing (the counter sequence every caller
    /// observes today). A failed compute propagates to the leader only;
    /// waiters retry, so a transient error never poisons the key.
    pub fn get_or_try_compute<E>(
        &self,
        key: K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, bool), E> {
        let mut compute = Some(compute);
        loop {
            let (flight, leading) = {
                let mut inner = self.locked();
                if let Some(v) = Self::lookup(&mut inner, &key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((v, true));
                }
                match inner.flights.get(&key) {
                    Some(f) => (Arc::clone(f), false),
                    None => {
                        let f = Arc::new(Flight::new());
                        inner.flights.insert(key.clone(), Arc::clone(&f));
                        (f, true)
                    }
                }
            };
            if leading {
                // Leader: compute outside every lock.
                self.misses.fetch_add(1, Ordering::Relaxed);
                let mut guard = FlightGuard {
                    cache: self,
                    key: key.clone(),
                    flight,
                    done: false,
                };
                let value = (compute.take().expect("leader computes once"))()?;
                // Guard's Drop fails the flight if `compute` panics or
                // errors (the `?` above); on success, admit + publish.
                {
                    let mut inner = self.locked();
                    if self.admit(&mut inner, &key) {
                        self.insert_locked(&mut inner, key.clone(), value.clone());
                    }
                }
                guard.settle(FlightState::Done(value.clone()));
                return Ok((value, false));
            }
            // Waiter: block on the leader's flight.
            let mut st = flight.state.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                match &*st {
                    FlightState::Pending => {
                        st = flight.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                    }
                    FlightState::Done(v) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.stampedes_avoided.fetch_add(1, Ordering::Relaxed);
                        return Ok((v.clone(), true));
                    }
                    FlightState::Failed => break,
                }
            }
            // Leader failed — loop and try again (possibly as leader).
        }
    }

    /// Mutate the resident value for `key` in place, if present.
    /// Re-weighs the entry afterwards (an update may grow it past the
    /// budget, triggering eviction).
    pub fn update(&self, key: &K, mutate: impl FnOnce(&mut V)) -> bool {
        let mut inner = self.locked();
        let Some(slot) = inner.map.get_mut(key) else {
            return false;
        };
        mutate(&mut slot.value);
        let bytes = std::mem::size_of::<K>() + slot.value.weight_bytes();
        let old = std::mem::replace(&mut slot.bytes, bytes);
        inner.resident_bytes = inner.resident_bytes - old + bytes;
        self.evict_to_budget(&mut inner);
        true
    }

    fn admit(&self, inner: &mut Inner<K, V>, key: &K) -> bool {
        let Some(bloom) = inner.bloom.as_mut() else {
            return true;
        };
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        let seen = bloom.check_and_set(h.finish());
        if !seen {
            self.admission_rejected.fetch_add(1, Ordering::Relaxed);
        }
        seen
    }

    fn insert_locked(&self, inner: &mut Inner<K, V>, key: K, value: V) {
        let bytes = std::mem::size_of::<K>() + value.weight_bytes();
        if self.max_bytes.is_some_and(|m| bytes > m) {
            // Larger than the whole budget: caching it is pure churn.
            self.admission_rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        inner.tick += 1;
        let stamp = inner.tick;
        if let Some(old) = inner.map.insert(
            key.clone(),
            Slot {
                value,
                bytes,
                stamp,
            },
        ) {
            inner.resident_bytes -= old.bytes;
            inner.lru.remove(&old.stamp);
        }
        inner.resident_bytes += bytes;
        inner.lru.insert(stamp, key);
        self.evict_to_budget(inner);
    }

    fn evict_to_budget(&self, inner: &mut Inner<K, V>) {
        loop {
            let over = self.max_entries.is_some_and(|m| inner.map.len() > m)
                || self.max_bytes.is_some_and(|m| inner.resident_bytes > m);
            if !over {
                return;
            }
            let Some((&oldest, _)) = inner.lru.iter().next() else {
                return;
            };
            let key = inner.lru.remove(&oldest).expect("lru stamp present");
            if let Some(slot) = inner.map.remove(&key) {
                inner.resident_bytes -= slot.bytes;
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Resident value without bumping LRU or counters (tests/metrics).
    pub fn peek(&self, key: &K) -> Option<V> {
        self.locked().map.get(key).map(|s| s.value.clone())
    }

    /// Whether `key` is resident (no LRU bump, no counters).
    pub fn contains(&self, key: &K) -> bool {
        self.locked().map.contains_key(key)
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.locked().map.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.locked().resident_bytes
    }

    /// Lookups served from the store.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran the compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries displaced by the budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Computed values the admission policy declined to cache.
    pub fn admission_rejected(&self) -> u64 {
        self.admission_rejected.load(Ordering::Relaxed)
    }

    /// Concurrent misses that waited instead of recomputing.
    pub fn stampedes_avoided(&self) -> u64 {
        self.stampedes_avoided.load(Ordering::Relaxed)
    }

    /// Full counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        let (entries, resident_bytes) = {
            let inner = self.locked();
            (inner.map.len(), inner.resident_bytes)
        };
        CacheCounters {
            entries,
            resident_bytes,
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
            admission_rejected: self.admission_rejected(),
            stampedes_avoided: self.stampedes_avoided(),
        }
    }
}

/// Number of finite buckets in a [`RatioHistogram`].
pub const RATIO_BUCKETS: usize = 16;

/// Histogram of observed/predicted makespan ratios, bucketed on a
/// log₂ scale in half-steps over `[2⁻⁴, 2⁴)`; out-of-range ratios
/// clamp into the end buckets. Bucket-wise exact under [`merge`].
///
/// [`merge`]: RatioHistogram::merge
#[derive(Debug, Clone, PartialEq)]
pub struct RatioHistogram {
    counts: [u64; RATIO_BUCKETS],
    count: u64,
    sum: f64,
}

impl Default for RatioHistogram {
    fn default() -> Self {
        RatioHistogram {
            counts: [0; RATIO_BUCKETS],
            count: 0,
            sum: 0.0,
        }
    }
}

impl RatioHistogram {
    /// Record one observed/predicted ratio (non-finite and non-positive
    /// ratios are dropped).
    pub fn record(&mut self, ratio: f64) {
        if !ratio.is_finite() || ratio <= 0.0 {
            return;
        }
        let idx = ((ratio.log2() + 4.0) * 2.0).floor();
        let idx = idx.clamp(0.0, (RATIO_BUCKETS - 1) as f64) as usize;
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += ratio;
    }

    /// Upper bound of bucket `i` (the last bucket is a catch-all).
    pub fn upper_bound(i: usize) -> f64 {
        2f64.powf((i as f64 + 1.0) / 2.0 - 4.0)
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64; RATIO_BUCKETS] {
        &self.counts
    }

    /// Total ratios recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded ratios (for a Prometheus `_sum` series).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean of recorded ratios (1.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            1.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Fold `other` into `self`, bucket-wise exact.
    pub fn merge(&mut self, other: &RatioHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn val(n: usize) -> Vec<u8> {
        vec![0u8; n]
    }

    #[test]
    fn unbounded_default_behaves_like_a_map() {
        let cache: BoundedCache<u64, Vec<u8>> = BoundedCache::new(&CacheConfig::default());
        let (v, hit) = cache
            .get_or_try_compute(7, || Ok::<_, ()>(val(10)))
            .unwrap();
        assert!(!hit);
        assert_eq!(v.len(), 10);
        let (_, hit) = cache
            .get_or_try_compute(7, || -> Result<Vec<u8>, ()> {
                panic!("must not recompute")
            })
            .unwrap();
        assert!(hit);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn byte_budget_evicts_lru_first() {
        let cfg = CacheConfig {
            max_bytes: Some(3 * (std::mem::size_of::<u64>() + val(100).weight_bytes())),
            ..CacheConfig::default()
        };
        let cache: BoundedCache<u64, Vec<u8>> = BoundedCache::new(&cfg);
        for k in 0..3u64 {
            cache
                .get_or_try_compute(k, || Ok::<_, ()>(val(100)))
                .unwrap();
        }
        // Touch key 0 so key 1 is the LRU victim.
        assert!(cache.get(&0).is_some());
        cache
            .get_or_try_compute(3, || Ok::<_, ()>(val(100)))
            .unwrap();
        assert!(cache.contains(&0) && !cache.contains(&1));
        assert!(cache.contains(&2) && cache.contains(&3));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.resident_bytes() <= cfg.max_bytes.unwrap());
    }

    #[test]
    fn entry_budget_holds() {
        let cfg = CacheConfig {
            max_entries: Some(2),
            ..CacheConfig::default()
        };
        let cache: BoundedCache<u64, Vec<u8>> = BoundedCache::new(&cfg);
        for k in 0..10u64 {
            cache.get_or_try_compute(k, || Ok::<_, ()>(val(8))).unwrap();
            assert!(cache.len() <= 2);
        }
        assert_eq!(cache.evictions(), 8);
    }

    #[test]
    fn bloom_admits_only_on_second_sighting() {
        let cfg = CacheConfig {
            admission: AdmissionPolicy::bloom(),
            ..CacheConfig::default()
        };
        let cache: BoundedCache<u64, Vec<u8>> = BoundedCache::new(&cfg);
        let (_, hit) = cache
            .get_or_try_compute(42, || Ok::<_, ()>(val(4)))
            .unwrap();
        assert!(!hit && !cache.contains(&42), "first sighting is doorkept");
        assert_eq!(cache.admission_rejected(), 1);
        let (_, hit) = cache
            .get_or_try_compute(42, || Ok::<_, ()>(val(4)))
            .unwrap();
        assert!(!hit && cache.contains(&42), "second sighting is admitted");
        let (_, hit) = cache
            .get_or_try_compute(42, || -> Result<Vec<u8>, ()> { panic!("resident now") })
            .unwrap();
        assert!(hit);
    }

    #[test]
    fn oversized_values_are_never_cached() {
        let cfg = CacheConfig {
            max_bytes: Some(64),
            ..CacheConfig::default()
        };
        let cache: BoundedCache<u64, Vec<u8>> = BoundedCache::new(&cfg);
        cache
            .get_or_try_compute(1, || Ok::<_, ()>(val(1000)))
            .unwrap();
        assert!(!cache.contains(&1));
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.admission_rejected(), 1);
    }

    #[test]
    fn leader_error_propagates_and_key_stays_computable() {
        let cache: BoundedCache<u64, Vec<u8>> = BoundedCache::new(&CacheConfig::default());
        assert!(cache
            .get_or_try_compute(5, || Err::<Vec<u8>, &str>("boom"))
            .is_err());
        let (_, hit) = cache
            .get_or_try_compute(5, || Ok::<_, &str>(val(1)))
            .unwrap();
        assert!(!hit, "failed compute must not poison the key");
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn concurrent_misses_single_flight() {
        let cache: BoundedCache<u64, Vec<u8>> = BoundedCache::new(&CacheConfig::default());
        let cache = &cache;
        let (enter_tx, enter_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        std::thread::scope(|s| {
            let leader = s.spawn(move || {
                cache
                    .get_or_try_compute(9, || {
                        enter_tx.send(()).unwrap();
                        release_rx.recv().unwrap();
                        Ok::<_, ()>(val(3))
                    })
                    .unwrap()
            });
            // Wait until the leader is mid-compute, then miss the same key.
            enter_rx.recv().unwrap();
            let waiter = s.spawn(|| {
                cache
                    .get_or_try_compute(9, || -> Result<Vec<u8>, ()> {
                        panic!("stampede: waiter recomputed")
                    })
                    .unwrap()
            });
            release_tx.send(()).unwrap();
            let (lv, lhit) = leader.join().unwrap();
            let (wv, whit) = waiter.join().unwrap();
            assert!(!lhit && whit);
            assert_eq!(lv, wv);
        });
        assert_eq!(cache.misses(), 1, "exactly one compute ran");
        assert_eq!(cache.stampedes_avoided(), 1);
    }

    #[test]
    fn ratio_histogram_buckets_and_merges() {
        let mut h = RatioHistogram::default();
        h.record(1.0);
        h.record(2.0);
        h.record(1000.0); // clamps into the catch-all
        h.record(f64::NAN); // dropped
        assert_eq!(h.count(), 3);
        assert!((h.mean() - (1.0 + 2.0 + 1000.0) / 3.0).abs() < 1e-12);
        // 1.0 → log2=0 → bucket 8; 2.0 → bucket 10; huge → bucket 15.
        assert_eq!(h.counts()[8], 1);
        assert_eq!(h.counts()[10], 1);
        assert_eq!(h.counts()[RATIO_BUCKETS - 1], 1);
        assert!(RatioHistogram::upper_bound(8) > 1.0);
        let mut other = RatioHistogram::default();
        other.record(1.0);
        other.merge(&h);
        assert_eq!(other.count(), 4);
        assert_eq!(other.counts()[8], 2);
    }
}
