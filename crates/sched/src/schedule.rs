//! The device-level scheduler: place a stream of block-GEMM work items
//! across every SM of a [`DeviceSpec`] and report the makespan.
//!
//! Three decompositions are supported, mirroring the split CUTLASS /
//! Stream-K draw for irregular batch counts:
//!
//! * **Data-parallel** — one block per work item, round-robin across
//!   SMs. Simple, but an `S·w + 1`-block workload pays a whole extra
//!   wave for one block (the tail-quantization problem).
//! * **Stream-K** — the k-loop of each block is split at its
//!   communication-stage granularity into `g` iterations; the flat
//!   iteration space is divided contiguously and evenly across SMs.
//!   Blocks straddling an SM boundary need a fixup pass: the non-owner
//!   spills its partial C tile to global memory and the owner reloads
//!   and reduces it.
//! * **Skinny-K** — Stream-K's placement with the tall-skinny tree
//!   fixup ([`kami_core::model::skinny`]): the owner's reduction runs
//!   in `⌈log₂(partials+1)⌉` pairwise rounds instead of serially.
//!   Applicable only to tall-skinny shapes (`m,n ≤ 64`, deep k), whose
//!   k-split execution path is what the tree models.
//!
//! Cost quantities come from the plan cache ([`crate::plan`]): one
//! block costs its SM `M = max(serial/resident, bottleneck)` cycles at
//! steady state — exactly the reciprocal of
//! [`kami_gpu_sim::occupancy::analyze`]'s `rate_per_cycle`, which is
//! what ties the device-level makespan back to the single-block model.

use crate::error::SchedError;
use crate::plan::{PlanCache, PlanEntry};
use crate::work::BlockWork;
use kami_gpu_sim::{CostConfig, DeviceSpec, Trace, TraceEvent, TraceKind};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How the work stream is decomposed across SMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decomposition {
    /// One thread block per work item.
    DataParallel,
    /// Work-centric k-loop splitting with a fixup/reduction pass.
    StreamK,
    /// Stream-K splitting with the tall-skinny **tree** fixup: an owner
    /// straddled across `s` SMs reduces its `s` spilled partials in
    /// `⌈log₂(s+1)⌉` pairwise rounds instead of `s` serial merges
    /// (same bytes, shorter critical path — the device-level mirror of
    /// [`kami_core::model::skinny`]). Only tall-skinny shapes
    /// (`m,n ≤ 64`, deep k) run the k-split path, so forcing this on
    /// any other shape is [`SchedError::NotSkinny`].
    SkinnyK,
    /// Whole items placed heaviest-first onto the least-loaded SM — the
    /// no-fixup fallback for nnz-weighted sparse streams
    /// ([`crate::sparse`]). Uniform dense streams treat it as
    /// data-parallel (equal weights make the two placements identical).
    WeightedLpt,
    /// Model every applicable decomposition and keep the smallest
    /// makespan (ties go data-parallel).
    Auto,
}

impl Decomposition {
    pub fn label(self) -> &'static str {
        match self {
            Decomposition::DataParallel => "data-parallel",
            Decomposition::StreamK => "stream-k",
            Decomposition::SkinnyK => "skinny-k",
            Decomposition::WeightedLpt => "weighted-lpt",
            Decomposition::Auto => "auto",
        }
    }
}

/// Per-SM placement outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmStats {
    pub sm: usize,
    /// Blocks whose first (owning) chunk ran here.
    pub blocks: usize,
    /// K-loop iterations executed here (`blocks · k_stages` under
    /// data-parallel).
    pub k_iters: usize,
    /// Fixup transfers (partial-tile spills plus reductions) this SM
    /// performed.
    pub fixups: usize,
    pub busy_cycles: f64,
}

/// Device-level schedule report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleReport {
    pub device_name: String,
    /// What the caller asked for.
    pub requested: Decomposition,
    /// What actually ran (`Auto` resolves to one of the two).
    pub decomposition: Decomposition,
    pub total_blocks: usize,
    /// K-loop split granularity of the scheduled shape (1 when ragged).
    pub k_stages: usize,
    /// Cycles until the last SM finishes.
    pub makespan_cycles: f64,
    pub useful_flops: u64,
    /// Device throughput over the makespan.
    pub achieved_tflops: f64,
    /// Mean SM busy time over the makespan (1.0 = no idling).
    pub utilization: f64,
    /// `1 − mean(busy)/max(busy)`: 0 when perfectly balanced, → 1 when
    /// one SM carries the tail alone.
    pub tail_imbalance: f64,
    /// Work items whose plan was served from the cache this launch.
    pub plans_reused: usize,
    /// Work items that triggered a tuning sweep this launch.
    pub plans_tuned: usize,
    pub per_sm: Vec<SmStats>,
}

impl ScheduleReport {
    /// The SM that finishes last.
    pub fn busiest_sm(&self) -> Option<&SmStats> {
        self.per_sm
            .iter()
            .max_by(|a, b| a.busy_cycles.partial_cmp(&b.busy_cycles).expect("finite"))
    }
}

/// One scheduled span of SM time (crate-internal currency shared by
/// the dense and sparse schedulers' stats and trace builders).
#[derive(Debug, Clone)]
pub(crate) enum Segment {
    /// A whole block (data-parallel / ragged).
    Block {
        block: usize,
        cycles: f64,
        flops: u64,
    },
    /// A contiguous run of k-loop iterations of one block (Stream-K).
    Chunk {
        block: usize,
        iters: (usize, usize),
        owner: bool,
        cycles: f64,
        flops: u64,
    },
    /// Non-owner spills its partial C tile.
    FixupStore {
        block: usize,
        bytes: u64,
        cycles: f64,
    },
    /// Owner reloads `partials` spilled tiles and reduces them.
    FixupLoad {
        block: usize,
        partials: usize,
        bytes: u64,
        cycles: f64,
    },
}

impl Segment {
    pub(crate) fn cycles(&self) -> f64 {
        match *self {
            Segment::Block { cycles, .. }
            | Segment::Chunk { cycles, .. }
            | Segment::FixupStore { cycles, .. }
            | Segment::FixupLoad { cycles, .. } => cycles,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct SmPlan {
    pub(crate) sm: usize,
    pub(crate) segments: Vec<Segment>,
}

impl SmPlan {
    pub(crate) fn busy(&self) -> f64 {
        self.segments.iter().map(Segment::cycles).sum()
    }
}

/// Device-level scheduler for one [`DeviceSpec`].
pub struct Scheduler<'a> {
    pub(crate) device: &'a DeviceSpec,
    pub(crate) decomposition: Decomposition,
    pub(crate) cost: Option<CostConfig>,
}

impl<'a> Scheduler<'a> {
    pub fn new(device: &'a DeviceSpec) -> Self {
        Scheduler {
            device,
            decomposition: Decomposition::Auto,
            cost: None,
        }
    }

    /// Force a specific decomposition instead of `Auto`.
    pub fn with_decomposition(mut self, decomposition: Decomposition) -> Self {
        self.decomposition = decomposition;
        self
    }

    /// Profile plans under a cost-model override (fault injection,
    /// overlap mode): every makespan this scheduler produces reflects
    /// the overridden cycle model.
    pub fn with_cost(mut self, cost: CostConfig) -> Self {
        self.cost = Some(cost);
        self
    }

    /// The device this scheduler places work on.
    pub fn device(&self) -> &DeviceSpec {
        self.device
    }

    /// The cost-model override, if any.
    pub fn cost(&self) -> Option<&CostConfig> {
        self.cost.as_ref()
    }

    /// Schedule `work` across all SMs and report.
    pub fn run(&self, work: &BlockWork, plans: &PlanCache) -> Result<ScheduleReport, SchedError> {
        self.schedule(work, plans).map(|(report, _)| report)
    }

    /// Like [`Scheduler::run`], but also emit a merged device-level
    /// trace: one Chrome-trace track per SM.
    pub fn run_traced(
        &self,
        work: &BlockWork,
        plans: &PlanCache,
    ) -> Result<(ScheduleReport, Trace), SchedError> {
        let (report, sm_plans) = self.schedule(work, plans)?;
        let trace = build_trace(self.device, &report, &sm_plans);
        Ok((report, trace))
    }

    fn schedule(
        &self,
        work: &BlockWork,
        plans: &PlanCache,
    ) -> Result<(ScheduleReport, Vec<SmPlan>), SchedError> {
        if work.is_empty() {
            return Err(SchedError::EmptyStream { kind: "dense" });
        }
        if work.is_uniform() {
            self.schedule_uniform(work, plans)
        } else {
            self.schedule_ragged(work, plans)
        }
    }

    fn schedule_uniform(
        &self,
        work: &BlockWork,
        plans: &PlanCache,
    ) -> Result<(ScheduleReport, Vec<SmPlan>), SchedError> {
        let item = work.items[0];
        let count = work.len();
        let sms = self.device.num_sms as usize;
        let (entry, hit) = plans.plan_for_costed(self.device, &item, self.cost.as_ref())?;
        let cost = &entry.cost;
        let steady = cost.steady_cycles();
        let g = cost.k_stages;
        let fixup_cycles = cost.c_tile_bytes as f64 / self.device.gmem_bytes_per_cycle;

        let skinny = kami_core::is_tall_skinny(item.m, item.n, item.k);

        let dp = dp_plans(count, sms, steady, cost.serial_cycles, cost.flops);
        let dp_makespan = makespan(&dp);

        // Splitting (Stream-K or Skinny-K) needs ≥ 2 stages to split at.
        let split = |tree: bool| {
            streamk_plans(
                count,
                g,
                sms,
                steady,
                cost.flops,
                cost.c_tile_bytes,
                fixup_cycles,
                tree,
            )
        };

        let (chosen, sm_plans, span) = match self.decomposition {
            Decomposition::StreamK | Decomposition::SkinnyK if g <= 1 => {
                return Err(SchedError::SingleStageStreamK {
                    m: item.m,
                    n: item.n,
                    k: item.k,
                });
            }
            Decomposition::StreamK => {
                let p = split(false);
                let ms = makespan(&p);
                (Decomposition::StreamK, p, ms)
            }
            Decomposition::SkinnyK if !skinny => {
                return Err(SchedError::NotSkinny {
                    m: item.m,
                    n: item.n,
                    k: item.k,
                });
            }
            Decomposition::SkinnyK => {
                let p = split(true);
                let ms = makespan(&p);
                (Decomposition::SkinnyK, p, ms)
            }
            Decomposition::Auto if g > 1 => {
                // Candidates are ranked on the model makespan scaled by
                // the shape class's observed/predicted EWMA for that
                // decomposition ([`PlanCache::correction_factor`]) —
                // exactly 1.0 when feedback is off or calibrated, so
                // the control arm ranks on the raw model. The *chosen*
                // candidate's reported makespan stays the model's: the
                // dispatch clock charges what prediction would, and
                // observation corrects the next ranking instead.
                let rank = |d: Decomposition, ms: f64| {
                    ms * plans.correction_factor(self.device, &item, self.cost.as_ref(), Some(d))
                };
                let mut best = (Decomposition::DataParallel, dp, dp_makespan);
                let mut best_rank = rank(Decomposition::DataParallel, dp_makespan);
                let sk = split(false);
                let ms = makespan(&sk);
                let r = rank(Decomposition::StreamK, ms);
                if r < best_rank {
                    best = (Decomposition::StreamK, sk, ms);
                    best_rank = r;
                }
                // Only tall-skinny shapes run the k-split path whose
                // tree fixup Skinny-K models.
                if skinny {
                    let skt = split(true);
                    let ms = makespan(&skt);
                    if rank(Decomposition::SkinnyK, ms) < best_rank {
                        best = (Decomposition::SkinnyK, skt, ms);
                    }
                }
                best
            }
            _ => (Decomposition::DataParallel, dp, dp_makespan),
        };
        plans.record_decomposition_costed(self.device, &item, self.cost.as_ref(), chosen);

        let report = self.finish(
            chosen,
            g,
            work.total_flops(),
            span,
            &sm_plans,
            if hit { (1, 0) } else { (0, 1) },
        );
        Ok((report, sm_plans))
    }

    /// Ragged streams: per-shape plans, greedy LPT placement on the
    /// steady per-block weights. Stream-K splitting is not attempted —
    /// the iteration spaces are heterogeneous.
    fn schedule_ragged(
        &self,
        work: &BlockWork,
        plans: &PlanCache,
    ) -> Result<(ScheduleReport, Vec<SmPlan>), SchedError> {
        let sms = self.device.num_sms as usize;
        let mut reused = 0usize;
        let mut tuned = 0usize;
        let mut entries: Vec<PlanEntry> = Vec::with_capacity(work.len());
        for item in &work.items {
            let (entry, hit) = plans.plan_for_costed(self.device, item, self.cost.as_ref())?;
            if hit {
                reused += 1;
            } else {
                tuned += 1;
            }
            entries.push(entry);
        }

        // LPT: heaviest block first onto the least-loaded SM.
        let mut order: Vec<usize> = (0..work.len()).collect();
        order.sort_by(|&i, &j| {
            entries[j]
                .cost
                .steady_cycles()
                .partial_cmp(&entries[i].cost.steady_cycles())
                .expect("finite")
        });
        let mut sm_plans: Vec<SmPlan> = (0..sms)
            .map(|sm| SmPlan {
                sm,
                segments: Vec::new(),
            })
            .collect();
        let mut loads = vec![0.0f64; sms];
        for block in order {
            let sm = loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("at least one SM");
            let cost = &entries[block].cost;
            loads[sm] += cost.steady_cycles();
            sm_plans[sm].segments.push(Segment::Block {
                block,
                cycles: cost.steady_cycles(),
                flops: cost.flops,
            });
        }
        // A lone block cannot finish faster than its serial latency:
        // floor each SM at the largest serial among its blocks.
        for (plan, load) in sm_plans.iter_mut().zip(&mut loads) {
            let serial_floor = plan
                .segments
                .iter()
                .map(|s| match *s {
                    Segment::Block { block, .. } => entries[block].cost.serial_cycles,
                    _ => 0.0,
                })
                .fold(0.0f64, f64::max);
            if *load > 0.0 && *load < serial_floor {
                let scale = serial_floor / *load;
                for seg in &mut plan.segments {
                    if let Segment::Block { cycles, .. } = seg {
                        *cycles *= scale;
                    }
                }
                *load = serial_floor;
            }
        }

        let span = makespan(&sm_plans);
        let report = self.finish(
            Decomposition::DataParallel,
            1,
            work.total_flops(),
            span,
            &sm_plans,
            (reused, tuned),
        );
        Ok((report, sm_plans))
    }

    fn finish(
        &self,
        chosen: Decomposition,
        k_stages: usize,
        useful_flops: u64,
        span: f64,
        sm_plans: &[SmPlan],
        counts: (usize, usize),
    ) -> ScheduleReport {
        build_report(
            self.device,
            self.decomposition,
            chosen,
            k_stages,
            useful_flops,
            span,
            sm_plans,
            counts,
        )
    }
}

/// Fold per-SM plans into a [`ScheduleReport`] — shared by the dense
/// scheduler and the sparse path ([`crate::sparse`]). Per-SM accounting
/// fans out across worker threads (rayon).
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_report(
    device: &DeviceSpec,
    requested: Decomposition,
    chosen: Decomposition,
    k_stages: usize,
    useful_flops: u64,
    span: f64,
    sm_plans: &[SmPlan],
    (plans_reused, plans_tuned): (usize, usize),
) -> ScheduleReport {
    let per_sm: Vec<SmStats> = sm_plans
        .par_iter()
        .map(|plan| {
            let mut stats = SmStats {
                sm: plan.sm,
                blocks: 0,
                k_iters: 0,
                fixups: 0,
                busy_cycles: plan.busy(),
            };
            for seg in &plan.segments {
                match *seg {
                    Segment::Block { .. } => {
                        stats.blocks += 1;
                        stats.k_iters += k_stages;
                    }
                    Segment::Chunk { iters, owner, .. } => {
                        if owner {
                            stats.blocks += 1;
                        }
                        stats.k_iters += iters.1 - iters.0;
                    }
                    Segment::FixupStore { .. } => stats.fixups += 1,
                    Segment::FixupLoad { partials, .. } => stats.fixups += partials,
                }
            }
            stats
        })
        .collect();

    let busy_sum: f64 = per_sm.iter().map(|s| s.busy_cycles).sum();
    let busy_max = per_sm.iter().map(|s| s.busy_cycles).fold(0.0f64, f64::max);
    let mean = busy_sum / per_sm.len().max(1) as f64;
    let seconds = span / device.clock_hz();
    ScheduleReport {
        device_name: device.name.clone(),
        requested,
        decomposition: chosen,
        total_blocks: per_sm.iter().map(|s| s.blocks).sum(),
        k_stages,
        makespan_cycles: span,
        useful_flops,
        achieved_tflops: useful_flops as f64 / seconds / 1e12,
        utilization: if span > 0.0 { mean / span } else { 0.0 },
        tail_imbalance: if busy_max > 0.0 {
            1.0 - mean / busy_max
        } else {
            0.0
        },
        plans_reused,
        plans_tuned,
        per_sm,
    }
}

pub(crate) fn makespan(plans: &[SmPlan]) -> f64 {
    plans.iter().map(SmPlan::busy).fold(0.0f64, f64::max)
}

/// Data-parallel placement: round-robin, `n_i` blocks each. With
/// `resident` blocks overlapping, `n_i` blocks cost `n_i · steady`
/// cycles — but never less than one serialized pass.
fn dp_plans(count: usize, sms: usize, steady: f64, serial: f64, flops: u64) -> Vec<SmPlan> {
    (0..sms)
        .map(|sm| {
            let n = count / sms + usize::from(sm < count % sms);
            let busy = (n as f64 * steady).max(if n > 0 { serial } else { 0.0 });
            let per_block = if n > 0 { busy / n as f64 } else { 0.0 };
            SmPlan {
                sm,
                segments: (0..n)
                    .map(|j| Segment::Block {
                        block: sm + j * sms,
                        cycles: per_block,
                        flops,
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Stream-K placement: the `count · g` k-loop iterations are divided
/// contiguously and near-evenly; each iteration costs `steady / g`.
/// A block straddling an SM boundary incurs a fixup: every non-owner
/// chunk spills the partial C tile (`FixupStore` on its SM) and the
/// owner reloads and reduces each partial (`FixupLoad`) — serially
/// with `tree` unset, in `⌈log₂(partials+1)⌉` pairwise rounds
/// (Skinny-K) with it set. The tree moves the same bytes; only the
/// owner's critical path shortens.
#[allow(clippy::too_many_arguments)]
fn streamk_plans(
    count: usize,
    g: usize,
    sms: usize,
    steady: f64,
    flops: u64,
    c_tile_bytes: u64,
    fixup_cycles: f64,
    tree: bool,
) -> Vec<SmPlan> {
    let total = count * g;
    let base = total / sms;
    let rem = total % sms;
    let lo_of = |sm: usize| sm * base + sm.min(rem);
    let sm_of = |iter: usize| {
        // Inverse of `lo_of` for the balanced contiguous partition.
        if base == 0 {
            iter
        } else if iter < rem * (base + 1) {
            iter / (base + 1)
        } else {
            rem + (iter - rem * (base + 1)) / base
        }
    };
    let per_iter = steady / g as f64;

    (0..sms)
        .map(|sm| {
            let lo = lo_of(sm);
            let hi = lo_of(sm + 1);
            let mut segments = Vec::new();
            let mut block = lo / g;
            while block * g < hi && lo < hi {
                let b_lo = block * g;
                let b_hi = b_lo + g;
                let start = lo.max(b_lo);
                let end = hi.min(b_hi);
                let iters = end - start;
                let owner = start == b_lo;
                segments.push(Segment::Chunk {
                    block,
                    iters: (start - b_lo, end - b_lo),
                    owner,
                    cycles: iters as f64 * per_iter,
                    flops: (flops as f64 * iters as f64 / g as f64) as u64,
                });
                if !owner {
                    // Non-owner chunk: spill the partial tile.
                    segments.push(Segment::FixupStore {
                        block,
                        bytes: c_tile_bytes,
                        cycles: fixup_cycles,
                    });
                }
                if owner && b_hi > hi {
                    // This block spills onto later SMs; the owner
                    // reloads and reduces one partial per extra chunk —
                    // serially, or (tree) in pairwise rounds over its
                    // own tile plus the `partials` spilled ones.
                    let partials = sm_of(b_hi - 1) - sm;
                    let rounds = if tree {
                        kami_core::model::skinny::tree_depth(partials + 1)
                    } else {
                        partials
                    };
                    segments.push(Segment::FixupLoad {
                        block,
                        partials,
                        bytes: c_tile_bytes * partials as u64,
                        cycles: fixup_cycles * rounds as f64,
                    });
                }
                block += 1;
            }
            SmPlan { sm, segments }
        })
        .collect()
}

/// Merge per-SM placements into one device-level trace: one track per
/// SM (the `warp` field carries the SM index), compute chunks as `mma`
/// events, fixup traffic as global load/store events.
pub(crate) fn build_trace(
    device: &DeviceSpec,
    report: &ScheduleReport,
    sm_plans: &[SmPlan],
) -> Trace {
    let per_sm_events: Vec<Vec<TraceEvent>> = sm_plans
        .par_iter()
        .map(|plan| {
            let mut cursor = 0.0f64;
            let mut events = Vec::with_capacity(plan.segments.len());
            for seg in &plan.segments {
                let (kind, amount, detail) = match seg {
                    Segment::Block { block, flops, .. } => {
                        (TraceKind::Mma, *flops, format!("blk {block}"))
                    }
                    Segment::Chunk {
                        block,
                        iters,
                        owner,
                        flops,
                        ..
                    } => (
                        TraceKind::Mma,
                        *flops,
                        format!(
                            "blk {block} it {}..{}{}",
                            iters.0,
                            iters.1,
                            if *owner { "" } else { " (partial)" }
                        ),
                    ),
                    Segment::FixupStore { block, bytes, .. } => (
                        TraceKind::GlobalStore,
                        *bytes,
                        format!("fixup spill blk {block}"),
                    ),
                    Segment::FixupLoad {
                        block,
                        partials,
                        bytes,
                        ..
                    } => (
                        TraceKind::GlobalLoad,
                        *bytes,
                        format!("fixup reduce blk {block} ({partials} partials)"),
                    ),
                };
                events.push(TraceEvent {
                    warp: plan.sm,
                    phase: 0,
                    kind,
                    amount,
                    start: cursor,
                    duration: seg.cycles(),
                    detail,
                });
                cursor += seg.cycles();
            }
            events
        })
        .collect();

    Trace::from_tracks(
        device.name.clone(),
        None,
        report.makespan_cycles,
        per_sm_events,
    )
}

/// One bundle of every scheduler-plane knob: decomposition choice,
/// cost-model override, and the plan-cache budget/feedback
/// configuration. `ServerConfig` and `FleetSpec` thread the `cache`
/// section through to the caches they construct; standalone users can
/// build a matched scheduler + cache pair from one value.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Decomposition to request (default `Auto`).
    pub decomposition: Decomposition,
    /// Cost-model override for profiling and makespans.
    pub cost: Option<CostConfig>,
    /// Plan-cache budget/admission/feedback knobs.
    pub cache: crate::cache::CacheConfig,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            decomposition: Decomposition::Auto,
            cost: None,
            cache: crate::cache::CacheConfig::default(),
        }
    }
}

impl SchedConfig {
    /// A scheduler honoring this bundle's decomposition and cost knobs.
    pub fn scheduler<'a>(&self, device: &'a DeviceSpec) -> Scheduler<'a> {
        let mut s = Scheduler::new(device).with_decomposition(self.decomposition);
        if let Some(c) = &self.cost {
            s = s.with_cost(c.clone());
        }
        s
    }

    /// A plan cache honoring this bundle's cache knobs.
    pub fn plan_cache(&self) -> PlanCache {
        PlanCache::with_config(self.cache.clone())
    }
}

/// Device-level counterpart of [`kami_core::estimate_batched`]: model a
/// uniform batch through the scheduler (tuning the shape, choosing a
/// decomposition) instead of extrapolating one block.
pub fn estimate_batched_device(
    device: &DeviceSpec,
    m: usize,
    n: usize,
    k: usize,
    precision: kami_gpu_sim::Precision,
    batch: usize,
) -> Result<ScheduleReport, SchedError> {
    let plans = PlanCache::new();
    Scheduler::new(device).run(&BlockWork::uniform(m, n, k, precision, batch), &plans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::WorkItem;
    use kami_gpu_sim::device::gh200;
    use kami_gpu_sim::Precision;

    #[test]
    fn uniform_dp_covers_all_blocks() {
        let dev = gh200();
        let plans = PlanCache::new();
        let work = BlockWork::uniform(64, 64, 64, Precision::Fp16, 500);
        let r = Scheduler::new(&dev)
            .with_decomposition(Decomposition::DataParallel)
            .run(&work, &plans)
            .unwrap();
        assert_eq!(r.decomposition, Decomposition::DataParallel);
        assert_eq!(r.total_blocks, 500);
        assert_eq!(r.per_sm.len(), dev.num_sms as usize);
        let placed: usize = r.per_sm.iter().map(|s| s.blocks).sum();
        assert_eq!(placed, 500);
        assert!(r.makespan_cycles > 0.0);
        assert!(r.achieved_tflops > 0.0);
        assert!(r.utilization > 0.0 && r.utilization <= 1.0 + 1e-12);
    }

    #[test]
    fn streamk_covers_every_iteration_exactly_once() {
        let dev = gh200();
        let plans = PlanCache::new();
        let work = BlockWork::uniform(64, 64, 256, Precision::Fp64, 397);
        let r = Scheduler::new(&dev)
            .with_decomposition(Decomposition::StreamK)
            .run(&work, &plans)
            .unwrap();
        assert_eq!(r.decomposition, Decomposition::StreamK);
        assert_eq!(r.total_blocks, 397);
        let iters: usize = r.per_sm.iter().map(|s| s.k_iters).sum();
        assert_eq!(iters, 397 * r.k_stages);
        assert!(r.per_sm.iter().any(|s| s.fixups > 0));
    }

    #[test]
    fn auto_never_loses_to_either_forced_choice() {
        let dev = gh200();
        for count in [dev.num_sms as usize * 4 + 1, 500, 16] {
            let work = BlockWork::uniform(64, 64, 256, Precision::Fp64, count);
            let auto = Scheduler::new(&dev).run(&work, &PlanCache::new()).unwrap();
            for forced in [Decomposition::DataParallel, Decomposition::StreamK] {
                let r = Scheduler::new(&dev)
                    .with_decomposition(forced)
                    .run(&work, &PlanCache::new())
                    .unwrap();
                assert!(
                    auto.makespan_cycles <= r.makespan_cycles * (1.0 + 1e-12),
                    "auto ({}) lost to {} at count {count}",
                    auto.decomposition.label(),
                    forced.label()
                );
            }
        }
    }

    #[test]
    fn skinny_auto_picks_the_tree_fixup_and_wins() {
        let dev = gh200();
        // 32 tall-skinny blocks on 100+ SMs: splitting is mandatory to
        // fill the device, and the tree fixup beats the serial one.
        let work = BlockWork::uniform(16, 16, 16384, Precision::Fp16, 32);
        let auto = Scheduler::new(&dev).run(&work, &PlanCache::new()).unwrap();
        assert_eq!(auto.decomposition, Decomposition::SkinnyK);
        for forced in [
            Decomposition::DataParallel,
            Decomposition::StreamK,
            Decomposition::SkinnyK,
        ] {
            let r = Scheduler::new(&dev)
                .with_decomposition(forced)
                .run(&work, &PlanCache::new())
                .unwrap();
            assert!(
                auto.makespan_cycles <= r.makespan_cycles * (1.0 + 1e-12),
                "auto ({}) lost to {} on the skinny stream",
                auto.decomposition.label(),
                forced.label()
            );
            // Conservation: every k-loop iteration runs exactly once
            // regardless of the fixup topology.
            let iters: usize = r.per_sm.iter().map(|s| s.k_iters).sum();
            assert_eq!(iters, 32 * r.k_stages, "{} lost iterations", forced.label());
        }
    }

    #[test]
    fn skinnyk_rejects_non_skinny_streams() {
        let dev = gh200();
        let work = BlockWork::uniform(64, 64, 256, Precision::Fp64, 64);
        let err = Scheduler::new(&dev)
            .with_decomposition(Decomposition::SkinnyK)
            .run(&work, &PlanCache::new())
            .unwrap_err();
        assert!(
            matches!(
                err,
                SchedError::NotSkinny {
                    m: 64,
                    n: 64,
                    k: 256
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn ragged_stream_schedules_lpt() {
        let dev = gh200();
        let plans = PlanCache::new();
        let mut items = Vec::new();
        for _ in 0..300 {
            items.push(WorkItem::new(64, 64, 64, Precision::Fp16));
            items.push(WorkItem::new(32, 32, 32, Precision::Fp16));
        }
        let r = Scheduler::new(&dev)
            .run(&BlockWork::new(items), &plans)
            .unwrap();
        assert_eq!(r.decomposition, Decomposition::DataParallel);
        assert_eq!(r.total_blocks, 600);
        // Two distinct shapes: two tuning sweeps, the rest reused.
        assert_eq!(r.plans_tuned, 2);
        assert_eq!(r.plans_reused, 598);
        assert!(r.tail_imbalance < 0.5, "LPT should balance a 2-shape mix");
    }

    #[test]
    fn empty_stream_is_rejected() {
        let dev = gh200();
        let plans = PlanCache::new();
        let err = Scheduler::new(&dev).run(&BlockWork::new(Vec::new()), &plans);
        assert!(err.is_err());
    }

    #[test]
    fn traced_run_matches_report() {
        let dev = gh200();
        let plans = PlanCache::new();
        let work = BlockWork::uniform(64, 64, 256, Precision::Fp64, 397);
        let (r, trace) = Scheduler::new(&dev).run_traced(&work, &plans).unwrap();
        assert_eq!(trace.device, r.device_name);
        assert_eq!(trace.total_cycles(), r.makespan_cycles);
        // Every SM's events are ordered and non-overlapping, and sum to
        // its busy time.
        for sm in r.per_sm.iter() {
            let evs: Vec<_> = trace.warp_events(sm.sm).collect();
            let mut cursor = 0.0f64;
            let mut sum = 0.0f64;
            for e in &evs {
                assert!(e.start >= cursor - 1e-9, "overlap on sm {}", sm.sm);
                cursor = e.start + e.duration;
                sum += e.duration;
            }
            assert!((sum - sm.busy_cycles).abs() < 1e-6);
        }
    }

    #[test]
    fn estimate_batched_device_runs() {
        let dev = gh200();
        let r = estimate_batched_device(&dev, 64, 64, 64, Precision::Fp16, 1024).unwrap();
        assert_eq!(r.total_blocks, 1024);
        assert!(r.achieved_tflops > 0.0);
    }
}
