//! # kami-sched
//!
//! Device-level work-centric scheduler: the layer between KAMI's
//! single-block kernels ([`kami_core`]) and a whole simulated GPU.
//!
//! The paper evaluates block-level algorithms by launching 16 384
//! concurrent thread blocks; this crate models that launch explicitly.
//! A [`BlockWork`] stream (uniform batches, ragged batches, sparse
//! SpMM/SpGEMM block lists, or the synthetic paper workload) is placed
//! across every SM of a [`kami_gpu_sim::DeviceSpec`]:
//!
//! * residency and steady-state block cost come from
//!   [`kami_gpu_sim::occupancy::analyze`],
//! * per-shape winning configurations come from the shared
//!   [`PlanCache`] (built on [`kami_core::tune::SharedTuner`]) and are
//!   reused across launches without re-tuning,
//! * the stream is decomposed data-parallel or Stream-K-style
//!   (k-loop splitting with a fixup/reduction pass), whichever the
//!   model favors for the shape and count,
//! * per-SM accounting fans out across worker threads and merges into
//!   a [`ScheduleReport`] (makespan, utilization, tail imbalance,
//!   achieved TFLOPS) plus an optional device-level Perfetto trace.
//!
//! Sparse streams get their own nnz-weighted path ([`sparse`]): a
//! [`SparseWork`] stream derives per-output-block nonzero iteration
//! counts from the BSR structure (or the SpGEMM symbolic phase) and is
//! split by *nonzero* k-iterations — Stream-K over the ragged iteration
//! space, with a weighted-LPT fallback for pathological skew.
//!
//! ```
//! use kami_sched::{BlockWork, Decomposition, PlanCache, Scheduler};
//! use kami_gpu_sim::{device, Precision};
//!
//! let dev = device::gh200();
//! let plans = PlanCache::new();
//! let work = BlockWork::uniform(64, 64, 64, Precision::Fp16, 1024);
//! let report = Scheduler::new(&dev).run(&work, &plans).unwrap();
//! println!("{}: {:.0} cycles, {:.1} TFLOPS ({})",
//!          report.device_name, report.makespan_cycles,
//!          report.achieved_tflops, report.decomposition.label());
//! ```

pub mod cache;
pub mod error;
pub mod plan;
pub mod schedule;
pub mod scheduled;
pub mod sparse;
pub mod work;

pub use cache::{
    AdmissionPolicy, BoundedCache, CacheConfig, CacheCounters, CacheWeight, FeedbackConfig,
    RatioHistogram, RATIO_BUCKETS,
};
pub use error::SchedError;
pub use plan::{BlockCost, PlanCache, PlanCacheStats, PlanEntry};
pub use schedule::{
    estimate_batched_device, Decomposition, SchedConfig, ScheduleReport, Scheduler, SmStats,
};
pub use scheduled::{Scheduled, ScheduledSpgemm, ScheduledSpmm};
pub use sparse::{
    spgemm_scheduled, spmm_scheduled, SparseCost, SparseKind, SparseScheduleReport, SparseWork,
    SparseWorkItem,
};
pub use work::{BlockWork, WorkItem, PAPER_BLOCK_COUNT};
