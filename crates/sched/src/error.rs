//! Typed errors of the device-level scheduling layer.

use kami_core::KamiError;
use std::fmt;

/// Error placing a work stream on a device.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// The work stream had no items (or no nonzero iterations) to place.
    EmptyStream {
        /// Stream kind: `"dense"`, `"spmm"`, `"spgemm"`.
        kind: &'static str,
    },
    /// Stream-K was forced on a shape whose k-loop tunes to a single
    /// stage — there is nothing to split.
    SingleStageStreamK { m: usize, n: usize, k: usize },
    /// Skinny-K was forced on a shape outside the tall-skinny regime
    /// (`m,n ≤ 64`, deep k) — its tree fixup models the k-split path,
    /// which only those shapes run.
    NotSkinny { m: usize, n: usize, k: usize },
    /// Error from the block layer underneath (tuning, planning, or
    /// running the representative / numeric kernels).
    Core(KamiError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::EmptyStream { kind } => {
                write!(f, "cannot schedule an empty {kind} work stream")
            }
            SchedError::SingleStageStreamK { m, n, k } => write!(
                f,
                "stream-k needs a multi-stage k-loop; {m}x{n}x{k} tunes to a single stage"
            ),
            SchedError::NotSkinny { m, n, k } => write!(
                f,
                "skinny-k models the tall-skinny k-split path; {m}x{n}x{k} is not tall-skinny"
            ),
            SchedError::Core(e) => write!(f, "block layer error: {e}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KamiError> for SchedError {
    fn from(e: KamiError) -> Self {
        SchedError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let e = SchedError::from(KamiError::MissingDevice);
        assert!(e.to_string().contains("block layer"));
        assert!(std::error::Error::source(&e).is_some());
        let empty = SchedError::EmptyStream { kind: "dense" };
        assert!(empty.to_string().contains("empty dense"));
        assert!(std::error::Error::source(&empty).is_none());
    }
}
