//! Sparse-aware device scheduling: nnz-weighted work streams for SpMM
//! and SpGEMM.
//!
//! The dense scheduler ([`crate::schedule`]) places *uniform* block
//! products; a sparse workload is the opposite — every output block
//! carries a different number of nonzero k-iterations. This module
//! makes that irregularity first-class:
//!
//! * a [`SparseWorkItem`] is one output block (an SpMM row slab or an
//!   SpGEMM output block) weighted by its nonzero k-iterations,
//!   derived from the BSR row-block structure (`rowptr` deltas) or
//!   the SpGEMM symbolic phase;
//! * the cost hook ([`SparseCost`]) prices one nonzero k-iteration
//!   through the existing [`PlanCache`] (one tuned unit block per
//!   shape, cached across launches) and charges RowPtr/ColBlkIdx
//!   traffic with [`kami_sparse::model`]'s metadata accounting;
//! * the nnz-aware Stream-K decomposition splits the flat *nonzero*
//!   iteration space — `Σᵢ nnzᵢ` iterations, not `items · k_dense` —
//!   contiguously across SMs with the same fixup-pass accounting as
//!   the dense path (non-owner chunks spill the partial C tile, the
//!   owner reloads and reduces each partial in ascending k order),
//!   falling back to weighted LPT when skew makes whole-item
//!   placement cheaper than fixup traffic.
//!
//! The scheduled entry points ([`spmm_scheduled`], [`spgemm_scheduled`])
//! run the *same* single-kernel sparse engines as the unscheduled ones
//! for the numeric result — the device schedule is a placement model
//! over the identical per-output-block products, so per-output-block
//! accumulation order is unchanged and results are bit-identical.

use crate::error::SchedError;
use crate::plan::PlanCache;
use crate::schedule::{
    build_report, build_trace, makespan, Decomposition, ScheduleReport, Scheduler, Segment, SmPlan,
};
use crate::scheduled::{ScheduledSpgemm, ScheduledSpmm};
use crate::work::WorkItem;
use kami_core::{KamiConfig, KamiError};
use kami_gpu_sim::{CostConfig, DeviceSpec, Matrix, Precision, Trace};
use kami_sparse::{model, BlockSparseMatrix};

/// Which sparse kernel a work stream feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparseKind {
    /// Sparse × dense: one item per block row of A.
    Spmm,
    /// Sparse × sparse: one item per symbolic output block.
    Spgemm,
}

impl SparseKind {
    pub fn label(self) -> &'static str {
        match self {
            SparseKind::Spmm => "spmm",
            SparseKind::Spgemm => "spgemm",
        }
    }
}

/// One sparse work item: an output block and the nonzero k-iterations
/// that produce it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseWorkItem {
    /// Output coordinate: `(block_row, 0)` for SpMM row slabs,
    /// `(block_row, block_col)` for SpGEMM output blocks.
    pub out: (usize, usize),
    /// Nonzero k-iterations: stored blocks of A's block row (SpMM) or
    /// contributing block pairs `A(i,l)·B(l,j)` (SpGEMM).
    pub nnz: usize,
}

/// A stream of nnz-weighted sparse work items for one device launch.
#[derive(Debug, Clone)]
pub struct SparseWork {
    pub kind: SparseKind,
    /// The block GEMM one nonzero k-iteration computes
    /// (`bs×n_B×bs` for SpMM, `bs×bs×bs` for SpGEMM).
    pub unit: WorkItem,
    /// Items with at least one nonzero iteration, in output order.
    pub items: Vec<SparseWorkItem>,
    /// Output blocks whose row/pair list was empty (no work emitted).
    pub empty_items: usize,
}

impl SparseWork {
    /// SpMM work stream: one item per nonempty block row of `a`, with
    /// nnz read off the BSR row-block structure (`rowptr` deltas). The
    /// unit iteration multiplies one stored `bs×bs` block into all
    /// `dense_cols` columns of B.
    pub fn from_spmm(a: &BlockSparseMatrix, dense_cols: usize, precision: Precision) -> Self {
        let bs = a.block_size();
        let mut items = Vec::with_capacity(a.rows_blk());
        let mut empty = 0usize;
        for i in 0..a.rows_blk() {
            let nnz = a.row_blocks(i).count();
            if nnz > 0 {
                items.push(SparseWorkItem { out: (i, 0), nnz });
            } else {
                empty += 1;
            }
        }
        SparseWork {
            kind: SparseKind::Spmm,
            unit: WorkItem::new(bs, dense_cols, bs, precision),
            items,
            empty_items: empty,
        }
    }

    /// SpGEMM work stream: one item per output block of the symbolic
    /// structure, weighted by its contributing pair count. Runs the
    /// symbolic phase internally (the same SPA the numeric kernel
    /// sizes its accumulators with).
    pub fn from_spgemm(a: &BlockSparseMatrix, b: &BlockSparseMatrix, precision: Precision) -> Self {
        let bs = a.block_size();
        let sym = kami_sparse::spgemm::symbolic(a, b);
        // Pairs per output block: one SPA-style counting pass, read out
        // along the symbolic structure so items appear in (row,
        // ascending col) order.
        let mut counts = vec![0usize; sym.cols_blk];
        let mut items = Vec::with_capacity(sym.nnz_blocks());
        for i in 0..sym.rows_blk {
            for (l, _) in a.row_blocks(i) {
                for (j, _) in b.row_blocks(l) {
                    counts[j] += 1;
                }
            }
            for &j in sym.row(i) {
                items.push(SparseWorkItem {
                    out: (i, j),
                    nnz: counts[j],
                });
                counts[j] = 0;
            }
        }
        SparseWork {
            kind: SparseKind::Spgemm,
            unit: WorkItem::new(bs, bs, bs, precision),
            items,
            empty_items: sym.rows_blk * sym.cols_blk - sym.nnz_blocks(),
        }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total nonzero k-iterations across the stream.
    pub fn total_nnz(&self) -> usize {
        self.items.iter().map(|i| i.nnz).sum()
    }

    /// Heaviest item's iteration count.
    pub fn max_nnz(&self) -> usize {
        self.items.iter().map(|i| i.nnz).max().unwrap_or(0)
    }

    /// Total useful flops: every nonzero iteration is one unit product.
    pub fn total_flops(&self) -> u64 {
        self.total_nnz() as u64 * self.unit.flops()
    }

    /// Per-item iteration counts (the shape `occupancy::analyze_stream`
    /// consumes).
    pub fn iter_counts(&self) -> Vec<usize> {
        self.items.iter().map(|i| i.nnz).collect()
    }
}

/// nnz-weighted cost hook: everything the sparse decompositions need
/// to price an item, derived from one [`PlanCache`] lookup of the unit
/// iteration's shape (tuned + profiled once, then cached) plus
/// [`kami_sparse::model`]'s metadata-byte accounting.
#[derive(Debug, Clone)]
pub struct SparseCost {
    /// Steady-state cycles of one nonzero k-iteration.
    pub per_iter_cycles: f64,
    /// Serialized latency of one unit iteration — the floor for any SM
    /// that runs work at all.
    pub unit_serial_cycles: f64,
    /// Useful flops of one unit iteration.
    pub unit_flops: u64,
    /// Partial C-tile payload one Stream-K fixup spills and reloads.
    pub c_tile_bytes: u64,
    /// Cycles of one fixup transfer at global-memory bandwidth.
    pub fixup_cycles: f64,
    /// Global bytes per cycle (prices RowPtr/ColBlkIdx reads).
    pub gmem_bytes_per_cycle: f64,
}

impl SparseCost {
    /// Build the cost hook for `work`'s unit shape; returns the hook
    /// and whether the plan came from the cache.
    pub fn from_plans(
        device: &DeviceSpec,
        plans: &PlanCache,
        work: &SparseWork,
    ) -> Result<(Self, bool), KamiError> {
        Self::from_plans_costed(device, plans, work, None)
    }

    /// Cost-override variant of [`SparseCost::from_plans`].
    pub fn from_plans_costed(
        device: &DeviceSpec,
        plans: &PlanCache,
        work: &SparseWork,
        cost: Option<&CostConfig>,
    ) -> Result<(Self, bool), KamiError> {
        let (entry, hit) = plans.plan_for_costed(device, &work.unit, cost)?;
        let cost = &entry.cost;
        Ok((
            SparseCost {
                per_iter_cycles: cost.steady_cycles(),
                unit_serial_cycles: cost.serial_cycles,
                unit_flops: cost.flops,
                c_tile_bytes: cost.c_tile_bytes,
                fixup_cycles: cost.c_tile_bytes as f64 / device.gmem_bytes_per_cycle,
                gmem_bytes_per_cycle: device.gmem_bytes_per_cycle,
            },
            hit,
        ))
    }

    /// RowPtr + ColBlkIdx cycles for reading `iters` block indices of
    /// one row — `sparse::model`'s metadata accounting over the global
    /// bandwidth.
    pub fn meta_cycles(&self, iters: usize) -> f64 {
        model::metadata_bytes(1.0, iters as f64) / self.gmem_bytes_per_cycle
    }

    /// Cycles one whole item costs its SM: nnz-weighted compute plus
    /// the item's index-metadata traffic.
    pub fn item_cycles(&self, nnz: usize) -> f64 {
        nnz as f64 * self.per_iter_cycles + self.meta_cycles(nnz)
    }
}

/// Schedule report of a sparse stream: the dense [`ScheduleReport`]
/// plus the nnz statistics the weighted decompositions reacted to.
#[derive(Debug, Clone)]
pub struct SparseScheduleReport {
    pub schedule: ScheduleReport,
    pub kind: SparseKind,
    /// Total nonzero k-iterations placed.
    pub total_nnz_iters: usize,
    /// Heaviest item's iterations.
    pub max_item_nnz: usize,
    /// Mean iterations per item.
    pub mean_item_nnz: f64,
    /// `max/mean` — 1 for uniform sparsity, large under power-law skew.
    pub nnz_skew: f64,
}

impl<'a> Scheduler<'a> {
    /// Schedule an nnz-weighted sparse work stream across all SMs.
    ///
    /// `DataParallel` places whole items round-robin (the quantized
    /// tile-per-CTA baseline); `StreamK` splits the flat nonzero
    /// iteration space with fixup accounting, falling back to weighted
    /// LPT when that models faster; `WeightedLpt` forces the fallback;
    /// `Auto` keeps the smallest makespan of the three.
    pub fn run_sparse(
        &self,
        work: &SparseWork,
        plans: &PlanCache,
    ) -> Result<SparseScheduleReport, SchedError> {
        self.schedule_sparse(work, plans).map(|(report, _)| report)
    }

    /// Like [`Scheduler::run_sparse`], but also emit the device-level
    /// trace: one track per SM, fixup traffic as global load/store
    /// events.
    pub fn run_sparse_traced(
        &self,
        work: &SparseWork,
        plans: &PlanCache,
    ) -> Result<(SparseScheduleReport, Trace), SchedError> {
        let (report, sm_plans) = self.schedule_sparse(work, plans)?;
        let trace = build_trace(self.device, &report.schedule, &sm_plans);
        Ok((report, trace))
    }

    fn schedule_sparse(
        &self,
        work: &SparseWork,
        plans: &PlanCache,
    ) -> Result<(SparseScheduleReport, Vec<SmPlan>), SchedError> {
        if work.is_empty() || work.total_nnz() == 0 {
            return Err(SchedError::EmptyStream {
                kind: work.kind.label(),
            });
        }
        let sms = self.device.num_sms as usize;
        let (cost, hit) =
            SparseCost::from_plans_costed(self.device, plans, work, self.cost.as_ref())?;

        let dp = sparse_dp_plans(work, sms, &cost);
        let dp_ms = makespan(&dp);
        let lpt = sparse_lpt_plans(work, sms, &cost);
        let lpt_ms = makespan(&lpt);
        let sk = sparse_streamk_plans(work, sms, &cost);
        let sk_ms = makespan(&sk);

        let (chosen, sm_plans, span) = match self.decomposition {
            Decomposition::DataParallel => (Decomposition::DataParallel, dp, dp_ms),
            Decomposition::WeightedLpt => (Decomposition::WeightedLpt, lpt, lpt_ms),
            Decomposition::StreamK => {
                // Pathological-skew fallback: when whole-item LPT beats
                // the iteration split (fixup traffic outweighing the
                // balance win), take it.
                if lpt_ms < sk_ms {
                    (Decomposition::WeightedLpt, lpt, lpt_ms)
                } else {
                    (Decomposition::StreamK, sk, sk_ms)
                }
            }
            // Sparse streams never run the dense k-split path the tree
            // fixup models.
            Decomposition::SkinnyK => {
                return Err(SchedError::NotSkinny {
                    m: work.unit.m,
                    n: work.unit.n,
                    k: work.unit.k,
                });
            }
            Decomposition::Auto => {
                let mut best = (Decomposition::DataParallel, dp, dp_ms);
                if lpt_ms < best.2 {
                    best = (Decomposition::WeightedLpt, lpt, lpt_ms);
                }
                if sk_ms < best.2 {
                    best = (Decomposition::StreamK, sk, sk_ms);
                }
                best
            }
        };
        plans.record_decomposition_costed(self.device, &work.unit, self.cost.as_ref(), chosen);

        let schedule = build_report(
            self.device,
            self.decomposition,
            chosen,
            1,
            work.total_flops(),
            span,
            &sm_plans,
            if hit { (1, 0) } else { (0, 1) },
        );
        let total = work.total_nnz();
        let mean = total as f64 / work.len() as f64;
        let max = work.max_nnz();
        let report = SparseScheduleReport {
            schedule,
            kind: work.kind,
            total_nnz_iters: total,
            max_item_nnz: max,
            mean_item_nnz: mean,
            nnz_skew: if mean > 0.0 { max as f64 / mean } else { 0.0 },
        };
        Ok((report, sm_plans))
    }
}

/// No SM that runs work finishes faster than one unit's serialized
/// latency: scale its chunks up to the floor (mirrors the dense ragged
/// path's serial floor).
fn apply_serial_floor(plans: &mut [SmPlan], serial: f64) {
    for plan in plans.iter_mut() {
        let busy = plan.busy();
        if busy > 0.0 && busy < serial {
            let scale = serial / busy;
            for seg in &mut plan.segments {
                if let Segment::Chunk { cycles, .. } = seg {
                    *cycles *= scale;
                }
            }
        }
    }
}

fn empty_plans(sms: usize) -> Vec<SmPlan> {
    (0..sms)
        .map(|sm| SmPlan {
            sm,
            segments: Vec::new(),
        })
        .collect()
}

/// Data-parallel: whole items round-robin in output order — the
/// quantized baseline that eats the full nnz skew (the SM drawing a
/// dense block row waits on it alone).
fn sparse_dp_plans(work: &SparseWork, sms: usize, cost: &SparseCost) -> Vec<SmPlan> {
    let mut plans = empty_plans(sms);
    for (idx, item) in work.items.iter().enumerate() {
        plans[idx % sms].segments.push(Segment::Chunk {
            block: idx,
            iters: (0, item.nnz),
            owner: true,
            cycles: cost.item_cycles(item.nnz),
            flops: item.nnz as u64 * cost.unit_flops,
        });
    }
    apply_serial_floor(&mut plans, cost.unit_serial_cycles);
    plans
}

/// Weighted LPT: whole items, heaviest first onto the least-loaded SM.
/// No fixup traffic, but a single dominant item still bounds the
/// makespan from below.
fn sparse_lpt_plans(work: &SparseWork, sms: usize, cost: &SparseCost) -> Vec<SmPlan> {
    let mut order: Vec<usize> = (0..work.len()).collect();
    order.sort_by(|&i, &j| work.items[j].nnz.cmp(&work.items[i].nnz));
    let mut plans = empty_plans(sms);
    let mut loads = vec![0.0f64; sms];
    for idx in order {
        let sm = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("at least one SM");
        let item = &work.items[idx];
        let cycles = cost.item_cycles(item.nnz);
        loads[sm] += cycles;
        plans[sm].segments.push(Segment::Chunk {
            block: idx,
            iters: (0, item.nnz),
            owner: true,
            cycles,
            flops: item.nnz as u64 * cost.unit_flops,
        });
    }
    apply_serial_floor(&mut plans, cost.unit_serial_cycles);
    plans
}

/// nnz-aware Stream-K: the flat pool of `Σᵢ nnzᵢ` nonzero k-iterations
/// is divided contiguously and near-evenly across SMs — the same
/// balanced partition as the dense path, but over a *ragged* iteration
/// space (item boundaries fall wherever the prefix sums put them).
/// Fixup accounting is identical to the dense scheduler: a non-owner
/// chunk spills its partial C tile, and the owner reloads and reduces
/// one partial per spilled chunk in ascending k order.
fn sparse_streamk_plans(work: &SparseWork, sms: usize, cost: &SparseCost) -> Vec<SmPlan> {
    let total = work.total_nnz();
    let base = total / sms;
    let rem = total % sms;
    let lo_of = |sm: usize| sm * base + sm.min(rem);
    let sm_of = |iter: usize| {
        // Inverse of `lo_of` for the balanced contiguous partition.
        if base == 0 {
            iter
        } else if iter < rem * (base + 1) {
            iter / (base + 1)
        } else {
            rem + (iter - rem * (base + 1)) / base
        }
    };
    // prefix[i] = first global iteration of item i.
    let mut prefix = Vec::with_capacity(work.len() + 1);
    let mut acc = 0usize;
    for item in &work.items {
        prefix.push(acc);
        acc += item.nnz;
    }
    prefix.push(acc);

    let mut plans: Vec<SmPlan> = (0..sms)
        .map(|sm| {
            let lo = lo_of(sm);
            let hi = lo_of(sm + 1);
            let mut segments = Vec::new();
            if lo < hi {
                // First item whose range overlaps `lo`.
                let mut idx = prefix.partition_point(|&p| p <= lo) - 1;
                while idx < work.len() && prefix[idx] < hi {
                    let b_lo = prefix[idx];
                    let b_hi = prefix[idx + 1];
                    let start = lo.max(b_lo);
                    let end = hi.min(b_hi);
                    let iters = end - start;
                    let owner = start == b_lo;
                    segments.push(Segment::Chunk {
                        block: idx,
                        iters: (start - b_lo, end - b_lo),
                        owner,
                        cycles: iters as f64 * cost.per_iter_cycles + cost.meta_cycles(iters),
                        flops: iters as u64 * cost.unit_flops,
                    });
                    if !owner {
                        segments.push(Segment::FixupStore {
                            block: idx,
                            bytes: cost.c_tile_bytes,
                            cycles: cost.fixup_cycles,
                        });
                    }
                    if owner && b_hi > hi {
                        // This item spills onto later SMs; the owner
                        // reduces one partial per extra chunk.
                        let partials = sm_of(b_hi - 1) - sm;
                        segments.push(Segment::FixupLoad {
                            block: idx,
                            partials,
                            bytes: cost.c_tile_bytes * partials as u64,
                            cycles: cost.fixup_cycles * partials as f64,
                        });
                    }
                    idx += 1;
                }
            }
            SmPlan { sm, segments }
        })
        .collect();
    apply_serial_floor(&mut plans, cost.unit_serial_cycles);
    plans
}

/// Run SpMM under the device scheduler: derive the nnz-weighted work
/// stream from A's row-block structure, schedule it (emitting per-SM
/// trace tracks), and compute `C = A·B` with the unscheduled sparse
/// kernel. The numeric result is bit-identical to the unscheduled one
/// by construction — same engine, same per-output-block accumulation
/// order.
pub fn spmm_scheduled(
    scheduler: &Scheduler,
    cfg: &KamiConfig,
    a: &BlockSparseMatrix,
    b: &Matrix,
    plans: &PlanCache,
) -> Result<ScheduledSpmm, SchedError> {
    let work = SparseWork::from_spmm(a, b.cols(), cfg.precision);
    let (report, trace) = scheduler.run_sparse_traced(&work, plans)?;
    let result =
        kami_sparse::spmm::spmm(scheduler.device(), cfg, a, b).map_err(SchedError::from)?;
    Ok(ScheduledSpmm {
        result,
        report,
        trace,
    })
}

/// Run SpGEMM under the device scheduler: derive the work stream from
/// the symbolic phase's per-output-block pair counts, schedule it, and
/// compute the numeric product with the unscheduled two-phase kernel.
pub fn spgemm_scheduled(
    scheduler: &Scheduler,
    cfg: &KamiConfig,
    a: &BlockSparseMatrix,
    b: &BlockSparseMatrix,
    plans: &PlanCache,
) -> Result<ScheduledSpgemm, SchedError> {
    let work = SparseWork::from_spgemm(a, b, cfg.precision);
    let (report, trace) = scheduler.run_sparse_traced(&work, plans)?;
    let result =
        kami_sparse::spgemm::spgemm(scheduler.device(), cfg, a, b).map_err(SchedError::from)?;
    Ok(ScheduledSpgemm {
        result,
        report,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kami_gpu_sim::device::gh200;
    use kami_sparse::gen::{power_law_block_sparse, random_block_sparse};
    use kami_sparse::BlockOrder;

    #[test]
    fn spmm_work_reads_rowptr_deltas() {
        let a = power_law_block_sparse(512, 16, 1.0, BlockOrder::RowMajor, 9);
        let w = SparseWork::from_spmm(&a, 128, Precision::Fp16);
        assert_eq!(w.kind, SparseKind::Spmm);
        assert_eq!(w.unit, WorkItem::new(16, 128, 16, Precision::Fp16));
        assert_eq!(w.total_nnz(), a.nnz_blocks());
        for item in &w.items {
            assert_eq!(item.nnz, a.row_blocks(item.out.0).count());
            assert!(item.nnz > 0);
        }
        assert_eq!(w.len() + w.empty_items, a.rows_blk());
        // Power-law: the first row dominates.
        assert_eq!(w.max_nnz(), w.items[0].nnz);
        assert!(w.max_nnz() as f64 > 2.0 * w.total_nnz() as f64 / w.len() as f64);
    }

    #[test]
    fn spgemm_work_matches_symbolic_pairs() {
        let a = random_block_sparse(128, 128, 16, 0.4, BlockOrder::RowMajor, 31);
        let b = random_block_sparse(128, 128, 16, 0.4, BlockOrder::RowMajor, 32);
        let w = SparseWork::from_spgemm(&a, &b, Precision::Fp16);
        let sym = kami_sparse::spgemm::symbolic(&a, &b);
        assert_eq!(w.len(), sym.nnz_blocks());
        assert_eq!(w.total_nnz(), sym.block_pairs);
        assert_eq!(w.total_flops(), sym.useful_flops(16));
        // Each item's pairs recomputed by brute force.
        for item in &w.items {
            let (i, j) = item.out;
            let want = (0..a.cols_blk())
                .filter(|&l| a.block_at(i, l).is_some() && b.block_at(l, j).is_some())
                .count();
            assert_eq!(item.nnz, want, "block ({i},{j})");
        }
    }

    #[test]
    fn streamk_conserves_iterations_and_fixups_pair_up() {
        let dev = gh200();
        let plans = PlanCache::new();
        let a = power_law_block_sparse(1024, 16, 1.2, BlockOrder::RowMajor, 5);
        let w = SparseWork::from_spmm(&a, 128, Precision::Fp16);
        let r = Scheduler::new(&dev)
            .with_decomposition(Decomposition::StreamK)
            .run_sparse(&w, &plans)
            .unwrap();
        let iters: usize = r.schedule.per_sm.iter().map(|s| s.k_iters).sum();
        assert_eq!(iters, w.total_nnz());
        assert_eq!(r.schedule.total_blocks, w.len());
        assert_eq!(r.total_nnz_iters, w.total_nnz());
        assert!(r.nnz_skew > 1.0);
    }

    #[test]
    fn forced_modes_report_themselves() {
        let dev = gh200();
        let plans = PlanCache::new();
        let a = random_block_sparse(512, 512, 16, 0.5, BlockOrder::RowMajor, 6);
        let w = SparseWork::from_spmm(&a, 64, Precision::Fp16);
        let dp = Scheduler::new(&dev)
            .with_decomposition(Decomposition::DataParallel)
            .run_sparse(&w, &plans)
            .unwrap();
        assert_eq!(dp.schedule.decomposition, Decomposition::DataParallel);
        let lpt = Scheduler::new(&dev)
            .with_decomposition(Decomposition::WeightedLpt)
            .run_sparse(&w, &plans)
            .unwrap();
        assert_eq!(lpt.schedule.decomposition, Decomposition::WeightedLpt);
        let auto = Scheduler::new(&dev).run_sparse(&w, &plans).unwrap();
        for r in [&dp, &lpt] {
            assert!(
                auto.schedule.makespan_cycles <= r.schedule.makespan_cycles * (1.0 + 1e-12),
                "auto lost to {}",
                r.schedule.decomposition.label()
            );
        }
    }

    #[test]
    fn empty_stream_is_rejected() {
        let dev = gh200();
        let plans = PlanCache::new();
        let a = random_block_sparse(64, 64, 16, 0.0, BlockOrder::RowMajor, 7);
        let w = SparseWork::from_spmm(&a, 64, Precision::Fp16);
        assert!(w.is_empty());
        assert!(Scheduler::new(&dev).run_sparse(&w, &plans).is_err());
    }

    #[test]
    fn traced_sparse_run_matches_report() {
        let dev = gh200();
        let plans = PlanCache::new();
        let a = power_law_block_sparse(512, 16, 1.0, BlockOrder::RowMajor, 8);
        let w = SparseWork::from_spmm(&a, 64, Precision::Fp16);
        let (r, trace) = Scheduler::new(&dev)
            .with_decomposition(Decomposition::StreamK)
            .run_sparse_traced(&w, &plans)
            .unwrap();
        assert_eq!(trace.device, r.schedule.device_name);
        assert_eq!(trace.total_cycles(), r.schedule.makespan_cycles);
        for sm in &r.schedule.per_sm {
            let sum: f64 = trace.warp_events(sm.sm).map(|e| e.duration).sum();
            assert!((sum - sm.busy_cycles).abs() < 1e-6, "sm {}", sm.sm);
        }
    }
}
