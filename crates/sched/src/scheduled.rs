//! The unified scheduled-result shape: every entry point that runs work
//! under the device scheduler returns the same three-field bundle.

use crate::sparse::SparseScheduleReport;
use kami_gpu_sim::Trace;
use kami_sparse::spgemm::SpgemmResult;
use kami_sparse::spmm::SpmmResult;

/// A numeric result paired with the schedule that placed it and the
/// per-SM device trace — generic over the result type `T` and the
/// report type `R` (sparse launches report [`SparseScheduleReport`],
/// dense launches a plain [`crate::ScheduleReport`]).
#[derive(Debug, Clone)]
pub struct Scheduled<T, R = SparseScheduleReport> {
    /// The numeric result, bit-identical to the unscheduled kernel's.
    pub result: T,
    /// The device-level schedule behind the makespan.
    pub report: R,
    /// One Chrome-trace track per SM.
    pub trace: Trace,
}

impl<T, R> Scheduled<T, R> {
    /// Re-wrap the result, keeping the schedule and trace.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Scheduled<U, R> {
        Scheduled {
            result: f(self.result),
            report: self.report,
            trace: self.trace,
        }
    }
}

/// Scheduled SpMM: the unscheduled kernel's numeric result plus the
/// nnz-weighted device schedule.
pub type ScheduledSpmm = Scheduled<SpmmResult>;

/// Scheduled SpGEMM: see [`ScheduledSpmm`].
pub type ScheduledSpgemm = Scheduled<SpgemmResult>;
