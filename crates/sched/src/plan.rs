//! The shared plan cache: shape + precision + device → winning
//! [`KamiConfig`], per-block cost quantities,
//! and the decomposition the scheduler settled on.
//!
//! Built on [`kami_core::tune::SharedTuner`] — the thread-safe
//! extension of the §5.2.5 autotuner — plus one representative
//! simulator run per shape to extract the quantities the device-level
//! model needs (serial cycles, shared-resource bottleneck, residency,
//! k-stage count, C-tile writeback bytes). Repeated shapes are served
//! from the cache without re-tuning; hit/miss counters make that
//! observable.

use crate::schedule::Decomposition;
use crate::work::WorkItem;
use kami_core::model::skinny;
use kami_core::plan::{gemm_cost, gemm_cost_auto, GemmPlan};
use kami_core::tune::{SharedTuner, TunedConfig};
use kami_core::{KamiConfig, KamiError};
use kami_gpu_sim::{occupancy, BackendKind, CostConfig, DeviceSpec, Occupancy, Precision};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Per-block cost quantities of one tuned shape on one device, in the
/// batched regime (global I/O included — §5.4).
#[derive(Debug, Clone)]
pub struct BlockCost {
    /// One block's serialized cycles (latency through the whole kernel).
    pub serial_cycles: f64,
    /// Cycles one block occupies the binding shared resource
    /// (max of smem bandwidth, tensor cores, global bandwidth).
    pub bottleneck_cycles: f64,
    /// Blocks resident per SM ([`occupancy::analyze`]).
    pub resident_blocks: u32,
    /// Communication rounds in the kernel — the granularity Stream-K
    /// splits the k-loop at (each stage is one comm + compute phase
    /// pair).
    pub k_stages: usize,
    /// C-tile writeback bytes: the payload a Stream-K fixup spills and
    /// reloads per extra partial.
    pub c_tile_bytes: u64,
    /// Useful flops of one block.
    pub flops: u64,
    /// The full occupancy analysis behind the numbers above.
    pub occupancy: Occupancy,
}

impl BlockCost {
    /// Steady-state cycles one block costs its SM: latency overlapped
    /// across `resident_blocks`, floored by the shared-resource
    /// bottleneck. The reciprocal is [`Occupancy::rate_per_cycle`].
    pub fn steady_cycles(&self) -> f64 {
        (self.serial_cycles / f64::from(self.resident_blocks.max(1))).max(self.bottleneck_cycles)
    }
}

/// One cached plan: the tuned config plus everything the scheduler
/// needs to place this shape without touching the simulator again.
#[derive(Debug, Clone)]
pub struct PlanEntry {
    pub tuned: TunedConfig,
    /// Decomposition the scheduler chose the last time it launched this
    /// shape (`Auto` until a launch records a choice).
    pub decomposition: Decomposition,
    pub cost: BlockCost,
}

/// `(device, m, n, k, precision, cost fingerprint)` — the fingerprint
/// keeps plans built under a cost-model override (fault injection,
/// overlap mode) from colliding with default-cost plans in the same
/// cache.
type PlanKey = (String, usize, usize, usize, Precision, u64);

/// Stable fingerprint of a cost-model override (0 = default cost).
fn cost_tag(cost: Option<&CostConfig>) -> u64 {
    match cost {
        None => 0,
        Some(c) => {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            c.theta_r.to_bits().hash(&mut h);
            c.theta_w.to_bits().hash(&mut h);
            c.mma_efficiency.to_bits().hash(&mut h);
            format!("{:?}", c.mode).hash(&mut h);
            h.finish() | 1
        }
    }
}

/// Shape class of one costed GEMM configuration: everything the cost
/// pass's output depends on. Two requests with the same key can share
/// one [`GemmPlan`] — the cost pass is deterministic in these fields
/// and touches no matrix data.
type CostKey = (
    String,       // device name
    usize,        // m
    usize,        // n
    usize,        // k
    Precision,    // operand precision
    &'static str, // algorithm
    usize,        // warps
    u64,          // smem_fraction bits
    u64,          // cost-model fingerprint
    bool,         // §4.7 auto-escalation requested
);

/// Thread-safe plan cache shared across launches (and across SM workers
/// within a launch).
#[derive(Default)]
pub struct PlanCache {
    tuner: SharedTuner,
    plans: Mutex<HashMap<PlanKey, PlanEntry>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// Shape-class-keyed cost-pass results: repeated shapes skip the
    /// cost pass entirely and run execute-only.
    costs: Mutex<HashMap<CostKey, Arc<GemmPlan>>>,
    cost_hits: AtomicUsize,
    cost_misses: AtomicUsize,
}

impl PlanCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying shared tuner (exposes `candidates_tried` and its
    /// own hit/miss counters).
    pub fn tuner(&self) -> &SharedTuner {
        &self.tuner
    }

    /// Plans served from the cache without tuning or simulating.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Plans that ran the tuning sweep plus one representative block.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cost-pass results served from the shape-class cache.
    pub fn cost_hits(&self) -> usize {
        self.cost_hits.load(Ordering::Relaxed)
    }

    /// Shape classes that actually ran the cost pass.
    pub fn cost_misses(&self) -> usize {
        self.cost_misses.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.locked().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lock the plan map, recovering from a poisoned mutex (a panicking
    /// SM worker must not take the whole cache down — the map itself is
    /// never left mid-update).
    fn locked(&self) -> MutexGuard<'_, HashMap<PlanKey, PlanEntry>> {
        self.plans.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The plan for one work-item shape, tuning and profiling on first
    /// use. Returns the entry and whether it was served from the cache.
    pub fn plan_for(
        &self,
        device: &DeviceSpec,
        item: &WorkItem,
    ) -> Result<(PlanEntry, bool), KamiError> {
        self.plan_for_costed(device, item, None)
    }

    /// Like [`PlanCache::plan_for`], but profile the representative
    /// block under a cost-model override. Plans built under different
    /// overrides are cached under distinct keys, so one cache can serve
    /// default-cost and fault-injected launches side by side.
    pub fn plan_for_costed(
        &self,
        device: &DeviceSpec,
        item: &WorkItem,
        cost: Option<&CostConfig>,
    ) -> Result<(PlanEntry, bool), KamiError> {
        let key = self.key(device, item, cost);
        if let Some(hit) = self.locked().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((hit.clone(), true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let entry = self.build_plan(device, item, cost)?;
        let mut plans = self.locked();
        Ok((plans.entry(key).or_insert(entry).clone(), false))
    }

    /// Record the decomposition a launch chose for this shape, so the
    /// cache maps shape → config **and** decomposition.
    pub fn record_decomposition(
        &self,
        device: &DeviceSpec,
        item: &WorkItem,
        decomposition: Decomposition,
    ) {
        self.record_decomposition_costed(device, item, None, decomposition)
    }

    /// Cost-override variant of [`PlanCache::record_decomposition`].
    pub fn record_decomposition_costed(
        &self,
        device: &DeviceSpec,
        item: &WorkItem,
        cost: Option<&CostConfig>,
        decomposition: Decomposition,
    ) {
        let key = self.key(device, item, cost);
        if let Some(entry) = self.locked().get_mut(&key) {
            entry.decomposition = decomposition;
        }
    }

    fn key(&self, device: &DeviceSpec, item: &WorkItem, cost: Option<&CostConfig>) -> PlanKey {
        (
            device.name.clone(),
            item.m,
            item.n,
            item.k,
            item.precision,
            cost_tag(cost),
        )
    }

    fn locked_costs(&self) -> MutexGuard<'_, HashMap<CostKey, Arc<GemmPlan>>> {
        self.costs.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The costed [`GemmPlan`] for one shape class, running the cost
    /// pass on first use and serving every repeat from the cache. With
    /// `auto` the §4.7 fallback ladder is applied (matching
    /// [`kami_core::gemm_auto`]); the cached plan then carries the
    /// escalated `smem_fraction`. Callers pair the result with
    /// [`kami_core::gemm_execute_plan`] for execute-only runs.
    ///
    /// Plans are backend-independent (the cost pass never touches
    /// matrix data), so the cache key ignores `cfg.backend` and the
    /// cached plan is normalized to the default backend — whichever
    /// configuration first costed a shape class, a bare
    /// `gemm_execute_plan` of the cached plan runs the reference
    /// simulator. Executors wanting a specific backend pass it
    /// explicitly via [`kami_core::gemm_execute_plan_with`] (as
    /// `kami-serve`'s warm path does with its `ServerConfig` backend).
    pub fn gemm_plan_for(
        &self,
        device: &DeviceSpec,
        cfg: &KamiConfig,
        m: usize,
        n: usize,
        k: usize,
        auto: bool,
    ) -> Result<Arc<GemmPlan>, KamiError> {
        let key: CostKey = (
            device.name.clone(),
            m,
            n,
            k,
            cfg.precision,
            cfg.algo.label(),
            cfg.warps,
            cfg.smem_fraction.to_bits(),
            cost_tag(Some(&cfg.cost)),
            auto,
        );
        if let Some(hit) = self.locked_costs().get(&key) {
            self.cost_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        self.cost_misses.fetch_add(1, Ordering::Relaxed);
        let mut costed = if auto {
            gemm_cost_auto(device, cfg, m, n, k)?
        } else {
            gemm_cost(device, cfg, m, n, k)?
        };
        // Normalize so the cached plan's default-execute backend never
        // depends on which configuration costed the shape class first.
        costed.cfg.backend = BackendKind::default();
        let plan = Arc::new(costed);
        Ok(self.locked_costs().entry(key).or_insert(plan).clone())
    }

    /// Predicted device-level makespan, in cycles, for `work` on
    /// `device` — the routing query a fleet-level placement layer asks
    /// before committing a request to a replica. The answer comes from
    /// the same scheduler model a dispatch would run, against the same
    /// cached per-block cost quantities: a cold shape class pays the
    /// tuning sweep plus one cost pass on this device and is cached;
    /// every repeat is answered without touching the simulator. The
    /// estimate therefore equals the makespan a solo dispatch of
    /// exactly this work pool would charge the device clock.
    ///
    /// Errors surface device infeasibility (e.g. FP64 work on a device
    /// without FP64 MMA shapes) — a router treats those replicas as
    /// ineligible rather than failing the request.
    pub fn predict_makespan(
        &self,
        device: &DeviceSpec,
        work: &crate::work::BlockWork,
        cost: Option<&CostConfig>,
    ) -> Result<f64, crate::error::SchedError> {
        let mut scheduler = crate::schedule::Scheduler::new(device);
        if let Some(c) = cost {
            scheduler = scheduler.with_cost(c.clone());
        }
        Ok(scheduler.run(work, self)?.makespan_cycles)
    }

    /// Tune the shape, then cost the winner to extract the block-level
    /// cost quantities. Profiling is the cost pass alone — no matrix
    /// data is generated or multiplied — and it goes through the
    /// shape-class cost cache, so a later execute-only run of the same
    /// shape reuses the result. A cost override is applied to the
    /// winner before costing, so the extracted cycles reflect the
    /// overridden model (the tuning sweep itself ranks candidates under
    /// the default cost — the override scales costs, it does not
    /// reorder configurations).
    fn build_plan(
        &self,
        device: &DeviceSpec,
        item: &WorkItem,
        cost: Option<&CostConfig>,
    ) -> Result<PlanEntry, KamiError> {
        if skinny::is_tall_skinny(item.m, item.n, item.k) {
            return self.build_skinny_plan(device, item, cost);
        }
        let mut tuned = self
            .tuner
            .config_for(device, item.m, item.n, item.k, item.precision)?;
        if let Some(c) = cost {
            tuned.cfg.cost = c.clone();
        }
        let plan = self.gemm_plan_for(device, &tuned.cfg, item.m, item.n, item.k, false)?;
        let report = &plan.report;
        let occ = occupancy::analyze(device, report, plan.useful_flops);

        let smem_bw_cycles = (report.smem_bytes_written + report.smem_bytes_read) as f64
            / device.smem_bytes_per_cycle();
        let gmem_bw_cycles = (report.gmem_bytes_read + report.gmem_bytes_written) as f64
            / device.gmem_bytes_per_cycle;
        let bottleneck_cycles = smem_bw_cycles
            .max(report.totals.compute)
            .max(gmem_bw_cycles);
        // Phases lay out as (comm, compute) pairs plus one tail phase.
        let k_stages = (report.phase_costs.len().saturating_sub(1) / 2).max(1);

        Ok(PlanEntry {
            tuned,
            decomposition: Decomposition::Auto,
            cost: BlockCost {
                serial_cycles: report.cycles,
                bottleneck_cycles,
                resident_blocks: occ.resident_blocks,
                k_stages,
                c_tile_bytes: report.gmem_bytes_written,
                flops: plan.useful_flops,
                occupancy: occ,
            },
        })
    }

    /// Tall-skinny items (`m,n ≤ 64`, `k ≥ 10^4`) cannot be tuned or
    /// costed monolithically — no configuration fits the register file
    /// at that depth — so the plan mirrors what the engine actually
    /// runs ([`kami_core::gemm_skinny`]): tune and cost one
    /// [`skinny::SKINNY_CHUNK_K`]-deep chunk, scale by the chunk
    /// count, and add the tree-fixup closed form from
    /// [`kami_core::model::skinny`]. Every deep-k item of the same
    /// `m×n` shares the one chunk-shape tuning sweep — the cache win
    /// the k-split path was designed around. The stored
    /// [`TunedConfig`] is the *chunk's*, matching what
    /// `GemmRequest::resolve_config` hands the executor.
    fn build_skinny_plan(
        &self,
        device: &DeviceSpec,
        item: &WorkItem,
        cost: Option<&CostConfig>,
    ) -> Result<PlanEntry, KamiError> {
        let chunk_k = skinny::SKINNY_CHUNK_K.min(item.k);
        let chunks = skinny::chunk_count(item.k);
        let mut tuned = self
            .tuner
            .config_for(device, item.m, item.n, chunk_k, item.precision)?;
        if let Some(c) = cost {
            tuned.cfg.cost = c.clone();
        }
        let plan = self.gemm_plan_for(device, &tuned.cfg, item.m, item.n, chunk_k, false)?;
        let report = &plan.report;
        let occ = occupancy::analyze(device, report, plan.useful_flops);
        let c_prec = kami_core::gemm::c_precision(item.precision);
        let fixup = skinny::fixup_cycles(
            device,
            &tuned.cfg.cost,
            item.m,
            item.n,
            chunks,
            c_prec,
            0,
            0,
        )
        .map_err(KamiError::Sim)?;

        let cf = chunks as f64;
        let tile_bytes = (item.m * item.n * c_prec.size_bytes()) as u64;
        let fixup_gmem = 3 * tile_bytes * chunks.saturating_sub(1) as u64;
        let smem_bw_cycles = cf * (report.smem_bytes_written + report.smem_bytes_read) as f64
            / device.smem_bytes_per_cycle();
        let gmem_bw_cycles = (cf * (report.gmem_bytes_read + report.gmem_bytes_written) as f64
            + fixup_gmem as f64)
            / device.gmem_bytes_per_cycle;
        let bottleneck_cycles = smem_bw_cycles
            .max(cf * report.totals.compute)
            .max(gmem_bw_cycles);
        let chunk_stages = (report.phase_costs.len().saturating_sub(1) / 2).max(1);

        Ok(PlanEntry {
            tuned,
            decomposition: Decomposition::Auto,
            cost: BlockCost {
                serial_cycles: cf * report.cycles + fixup,
                bottleneck_cycles,
                resident_blocks: occ.resident_blocks,
                k_stages: chunks * chunk_stages,
                c_tile_bytes: report.gmem_bytes_written,
                flops: item.flops(),
                occupancy: occ,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kami_gpu_sim::device::gh200;

    #[test]
    fn plan_is_cached_after_first_use() {
        let dev = gh200();
        let cache = PlanCache::new();
        let item = WorkItem::new(64, 64, 64, Precision::Fp16);
        let (first, was_hit) = cache.plan_for(&dev, &item).unwrap();
        assert!(!was_hit);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        assert!(first.tuned.candidates_tried > 1);
        let (second, was_hit) = cache.plan_for(&dev, &item).unwrap();
        assert!(was_hit);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(second.cost.serial_cycles, first.cost.serial_cycles);
        // Exactly one tuning sweep happened underneath.
        assert_eq!(cache.tuner().misses(), 1);
    }

    #[test]
    fn cost_quantities_are_consistent() {
        let dev = gh200();
        let cache = PlanCache::new();
        let item = WorkItem::new(64, 64, 64, Precision::Fp16);
        let (entry, _) = cache.plan_for(&dev, &item).unwrap();
        let c = &entry.cost;
        assert!(c.serial_cycles > 0.0);
        assert!(c.bottleneck_cycles > 0.0 && c.bottleneck_cycles <= c.serial_cycles);
        assert!(c.resident_blocks >= 1);
        assert!(c.k_stages >= 1);
        assert!(c.c_tile_bytes > 0);
        assert_eq!(c.flops, item.flops());
        // steady_cycles is the reciprocal of the occupancy rate.
        let rate = 1.0 / c.steady_cycles();
        assert!((rate - c.occupancy.rate_per_cycle).abs() / rate < 1e-9);
    }

    #[test]
    fn concurrent_lookups_tune_once_logically() {
        let dev = gh200();
        let cache = PlanCache::new();
        let item = WorkItem::new(32, 32, 32, Precision::Fp64);
        cache.plan_for(&dev, &item).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let (_, hit) = cache.plan_for(&dev, &item).unwrap();
                    assert!(hit);
                });
            }
        });
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cost_cache_skips_the_cost_pass_on_repeats() {
        let dev = gh200();
        let cache = PlanCache::new();
        let cfg = kami_core::KamiConfig::new(kami_core::Algo::OneD, Precision::Fp16);
        let first = cache.gemm_plan_for(&dev, &cfg, 64, 64, 64, false).unwrap();
        assert_eq!((cache.cost_hits(), cache.cost_misses()), (0, 1));
        let second = cache.gemm_plan_for(&dev, &cfg, 64, 64, 64, false).unwrap();
        assert_eq!((cache.cost_hits(), cache.cost_misses()), (1, 1));
        // Same Arc — the repeat did not rerun the cost pass.
        assert!(Arc::ptr_eq(&first, &second));
        // A different shape class (other warp count) costs separately.
        let wide = cfg.clone().with_warps(16);
        cache.gemm_plan_for(&dev, &wide, 64, 64, 64, false).unwrap();
        assert_eq!(cache.cost_misses(), 2);
    }

    #[test]
    fn build_plan_goes_through_the_cost_cache() {
        let dev = gh200();
        let cache = PlanCache::new();
        let item = WorkItem::new(64, 64, 64, Precision::Fp16);
        cache.plan_for(&dev, &item).unwrap();
        // Tuning profiled the winner via the cost cache exactly once.
        assert_eq!(cache.cost_misses(), 1);
        let (entry, _) = cache.plan_for(&dev, &item).unwrap();
        // An execute-only consumer asking for the tuned shape class hits.
        let plan = cache
            .gemm_plan_for(&dev, &entry.tuned.cfg, 64, 64, 64, false)
            .unwrap();
        assert!(cache.cost_hits() >= 1);
        assert_eq!(plan.report.cycles, entry.cost.serial_cycles);
    }

    #[test]
    fn predict_makespan_matches_scheduler_and_caches() {
        let dev = gh200();
        let cache = PlanCache::new();
        let work = crate::work::BlockWork::uniform(64, 64, 64, Precision::Fp16, 8);
        let pred = cache.predict_makespan(&dev, &work, None).unwrap();
        let report = crate::schedule::Scheduler::new(&dev)
            .run(&work, &cache)
            .unwrap();
        assert_eq!(
            pred, report.makespan_cycles,
            "routing query must equal the makespan a dispatch would charge"
        );
        let misses = cache.misses();
        cache.predict_makespan(&dev, &work, None).unwrap();
        assert_eq!(
            cache.misses(),
            misses,
            "repeat routing query must answer from the cache"
        );
    }

    #[test]
    fn predict_makespan_surfaces_infeasible_devices() {
        let dev = kami_gpu_sim::device::rtx5090();
        let cache = PlanCache::new();
        let work = crate::work::BlockWork::uniform(32, 32, 32, Precision::Fp64, 4);
        assert!(
            cache.predict_makespan(&dev, &work, None).is_err(),
            "FP64 on a device without FP64 MMA shapes must be reported ineligible"
        );
    }

    #[test]
    fn skinny_items_plan_via_the_chunk_shape() {
        let dev = gh200();
        let cache = PlanCache::new();
        let item = WorkItem::new(16, 16, 65536, Precision::Fp16);
        let (entry, _) = cache.plan_for(&dev, &item).unwrap();
        let c = &entry.cost;
        assert_eq!(c.flops, item.flops());
        let chunks = skinny::chunk_count(65536);
        assert!(
            c.k_stages >= chunks,
            "k-split granularity covers every chunk"
        );
        assert!(c.serial_cycles > 0.0 && c.bottleneck_cycles <= c.serial_cycles);
        // The tuned config is the chunk's, exactly what the executor gets.
        assert_eq!(cache.tuner().misses(), 1);
        // A deeper item of the same m x n reuses that one tuning sweep
        // *and* the chunk's cost pass — the k-split cache win.
        let deeper = WorkItem::new(16, 16, 131072, Precision::Fp16);
        cache.plan_for(&dev, &deeper).unwrap();
        assert_eq!(cache.tuner().misses(), 1);
        assert_eq!(cache.cost_misses(), 1);
    }

    #[test]
    fn decomposition_is_recorded() {
        let dev = gh200();
        let cache = PlanCache::new();
        let item = WorkItem::new(64, 64, 64, Precision::Fp16);
        cache.plan_for(&dev, &item).unwrap();
        cache.record_decomposition(&dev, &item, Decomposition::StreamK);
        let (entry, _) = cache.plan_for(&dev, &item).unwrap();
        assert_eq!(entry.decomposition, Decomposition::StreamK);
    }
}
