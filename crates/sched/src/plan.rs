//! The shared plan cache: shape + precision + device → winning
//! [`KamiConfig`], per-block cost quantities,
//! and the decomposition the scheduler settled on.
//!
//! Built on [`kami_core::tune::SharedTuner`] — the thread-safe
//! extension of the §5.2.5 autotuner — plus one representative
//! simulator run per shape to extract the quantities the device-level
//! model needs (serial cycles, shared-resource bottleneck, residency,
//! k-stage count, C-tile writeback bytes). Repeated shapes are served
//! from the cache without re-tuning; hit/miss counters make that
//! observable.

use crate::cache::{BoundedCache, CacheConfig, CacheCounters, CacheWeight, RatioHistogram};
use crate::schedule::Decomposition;
use crate::work::WorkItem;
use kami_core::model::skinny;
use kami_core::plan::{gemm_cost, gemm_cost_auto, GemmPlan};
use kami_core::tune::{SharedTuner, TunedConfig};
use kami_core::{KamiConfig, KamiError};
use kami_gpu_sim::{occupancy, BackendKind, CostConfig, DeviceSpec, Occupancy, Precision};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-block cost quantities of one tuned shape on one device, in the
/// batched regime (global I/O included — §5.4).
#[derive(Debug, Clone)]
pub struct BlockCost {
    /// One block's serialized cycles (latency through the whole kernel).
    pub serial_cycles: f64,
    /// Cycles one block occupies the binding shared resource
    /// (max of smem bandwidth, tensor cores, global bandwidth).
    pub bottleneck_cycles: f64,
    /// Blocks resident per SM ([`occupancy::analyze`]).
    pub resident_blocks: u32,
    /// Communication rounds in the kernel — the granularity Stream-K
    /// splits the k-loop at (each stage is one comm + compute phase
    /// pair).
    pub k_stages: usize,
    /// C-tile writeback bytes: the payload a Stream-K fixup spills and
    /// reloads per extra partial.
    pub c_tile_bytes: u64,
    /// Useful flops of one block.
    pub flops: u64,
    /// The full occupancy analysis behind the numbers above.
    pub occupancy: Occupancy,
}

impl BlockCost {
    /// Steady-state cycles one block costs its SM: latency overlapped
    /// across `resident_blocks`, floored by the shared-resource
    /// bottleneck. The reciprocal is [`Occupancy::rate_per_cycle`].
    pub fn steady_cycles(&self) -> f64 {
        (self.serial_cycles / f64::from(self.resident_blocks.max(1))).max(self.bottleneck_cycles)
    }
}

/// One cached plan: the tuned config plus everything the scheduler
/// needs to place this shape without touching the simulator again.
#[derive(Debug, Clone)]
pub struct PlanEntry {
    pub tuned: TunedConfig,
    /// Decomposition the scheduler chose the last time it launched this
    /// shape (`Auto` until a launch records a choice).
    pub decomposition: Decomposition,
    pub cost: BlockCost,
}

/// `(device, m, n, k, precision, cost fingerprint)` — the fingerprint
/// keeps plans built under a cost-model override (fault injection,
/// overlap mode) from colliding with default-cost plans in the same
/// cache.
type PlanKey = (String, usize, usize, usize, Precision, u64);

/// Stable fingerprint of a cost-model override (0 = default cost).
fn cost_tag(cost: Option<&CostConfig>) -> u64 {
    match cost {
        None => 0,
        Some(c) => {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            c.theta_r.to_bits().hash(&mut h);
            c.theta_w.to_bits().hash(&mut h);
            c.mma_efficiency.to_bits().hash(&mut h);
            format!("{:?}", c.mode).hash(&mut h);
            h.finish() | 1
        }
    }
}

/// Shape class of one costed GEMM configuration: everything the cost
/// pass's output depends on. Two requests with the same key can share
/// one [`GemmPlan`] — the cost pass is deterministic in these fields
/// and touches no matrix data.
type CostKey = (
    String,       // device name
    usize,        // m
    usize,        // n
    usize,        // k
    Precision,    // operand precision
    &'static str, // algorithm
    usize,        // warps
    u64,          // smem_fraction bits
    u64,          // cost-model fingerprint
    bool,         // §4.7 auto-escalation requested
);

/// Approximate resident bytes of one tuned-plan entry. The entry is
/// almost entirely inline (`TunedConfig`, `BlockCost`, `Occupancy`
/// carry no heap allocations), so its size plus a small slack for
/// map overhead is honest.
impl CacheWeight for PlanEntry {
    fn weight_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + 64
    }
}

/// Cost-pass plans carry a heap-allocated [`ExecutionReport`]
/// (per-phase cycle breakdown); the core crate sizes it.
///
/// [`ExecutionReport`]: kami_gpu_sim::ExecutionReport
impl CacheWeight for Arc<GemmPlan> {
    fn weight_bytes(&self) -> usize {
        self.approx_resident_bytes()
    }
}

/// Exponentially weighted moving average of observed/predicted ratios
/// for one shape class (first observation seeds the average).
#[derive(Debug, Clone, Copy, Default)]
struct Ewma {
    value: f64,
    n: u64,
}

impl Ewma {
    fn observe(&mut self, x: f64, alpha: f64) {
        self.value = if self.n == 0 {
            x
        } else {
            alpha * x + (1.0 - alpha) * self.value
        };
        self.n += 1;
    }
}

/// Observed-over-predicted state for one shape class: an entry-wide
/// EWMA plus one per decomposition actually launched, so `Auto`
/// re-ranking can correct each candidate by the ratio *its* launches
/// exhibited.
#[derive(Debug, Clone, Default)]
struct FeedbackEntry {
    overall: Ewma,
    per_decomposition: HashMap<Decomposition, Ewma>,
}

/// Counter snapshot of the whole plan plane: both bounded stores plus
/// the feedback loop. Embedded in `kami-serve`'s `Metrics` /
/// `FleetMetrics` rollups.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanCacheStats {
    /// Tuned-plan store (shape → config + block cost).
    pub plans: CacheCounters,
    /// Cost-pass store (shape class → [`GemmPlan`]).
    pub costs: CacheCounters,
    /// Observed executions recorded into the feedback plane.
    pub feedback_observations: u64,
    /// Makespan estimates actually corrected by an observed ratio.
    pub feedback_corrections: u64,
    /// Distribution of observed/predicted makespan ratios.
    pub ratio: RatioHistogram,
}

impl PlanCacheStats {
    /// Entries resident across both stores.
    pub fn entries(&self) -> usize {
        self.plans.entries + self.costs.entries
    }

    /// Approximate bytes resident across both stores.
    pub fn resident_bytes(&self) -> usize {
        self.plans.resident_bytes + self.costs.resident_bytes
    }

    /// Evictions across both stores.
    pub fn evictions(&self) -> u64 {
        self.plans.evictions + self.costs.evictions
    }

    /// Admission (Bloom/oversize) rejections across both stores.
    pub fn admission_rejected(&self) -> u64 {
        self.plans.admission_rejected + self.costs.admission_rejected
    }

    /// Stampedes avoided (single-flight waits) across both stores.
    pub fn stampedes_avoided(&self) -> u64 {
        self.plans.stampedes_avoided + self.costs.stampedes_avoided
    }

    /// Fold another snapshot into this one (bucket-wise exact; used by
    /// fleet rollups when replicas carry private caches).
    pub fn merge(&mut self, other: &PlanCacheStats) {
        let add = |a: &mut CacheCounters, b: &CacheCounters| {
            a.entries += b.entries;
            a.resident_bytes += b.resident_bytes;
            a.hits += b.hits;
            a.misses += b.misses;
            a.evictions += b.evictions;
            a.admission_rejected += b.admission_rejected;
            a.stampedes_avoided += b.stampedes_avoided;
        };
        add(&mut self.plans, &other.plans);
        add(&mut self.costs, &other.costs);
        self.feedback_observations += other.feedback_observations;
        self.feedback_corrections += other.feedback_corrections;
        self.ratio.merge(&other.ratio);
    }
}

/// Thread-safe plan cache shared across launches (and across SM workers
/// within a launch). Both stores sit on [`BoundedCache`]: the default
/// [`CacheConfig`] keeps them unbounded with admit-always (exactly the
/// historical `HashMap` behavior); a budgeted config holds a long
/// mixed trace to a fixed memory footprint with Bloom-doorkept
/// admission. Misses are single-flight — concurrent cold lookups of
/// one shape class run the tuning sweep / cost pass once.
pub struct PlanCache {
    tuner: SharedTuner,
    config: CacheConfig,
    plans: BoundedCache<PlanKey, PlanEntry>,
    /// Shape-class-keyed cost-pass results: repeated shapes skip the
    /// cost pass entirely and run execute-only.
    costs: BoundedCache<CostKey, Arc<GemmPlan>>,
    /// Observed/predicted ratio state per shape class (feedback arm
    /// only; empty while `config.feedback.enabled` is false).
    feedback: Mutex<HashMap<PlanKey, FeedbackEntry>>,
    observations: AtomicU64,
    corrections: AtomicU64,
    ratio_hist: Mutex<RatioHistogram>,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::with_config(CacheConfig::default())
    }
}

impl PlanCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache with explicit budget/admission/feedback knobs. The
    /// default config reproduces the unbounded, feedback-free cache
    /// bit-for-bit — that arm is what every golden test pins.
    pub fn with_config(config: CacheConfig) -> Self {
        PlanCache {
            tuner: SharedTuner::default(),
            plans: BoundedCache::new(&config),
            costs: BoundedCache::new(&config),
            feedback: Mutex::new(HashMap::new()),
            observations: AtomicU64::new(0),
            corrections: AtomicU64::new(0),
            ratio_hist: Mutex::new(RatioHistogram::default()),
            config,
        }
    }

    /// The configuration this cache runs under.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The underlying shared tuner (exposes `candidates_tried` and its
    /// own hit/miss counters).
    pub fn tuner(&self) -> &SharedTuner {
        &self.tuner
    }

    /// Plans served from the cache without tuning or simulating.
    pub fn hits(&self) -> usize {
        self.plans.hits() as usize
    }

    /// Plans that ran the tuning sweep plus one representative block.
    pub fn misses(&self) -> usize {
        self.plans.misses() as usize
    }

    /// Cost-pass results served from the shape-class cache.
    pub fn cost_hits(&self) -> usize {
        self.costs.hits() as usize
    }

    /// Shape classes that actually ran the cost pass.
    pub fn cost_misses(&self) -> usize {
        self.costs.misses() as usize
    }

    /// Concurrent misses that waited on an in-flight tuning sweep or
    /// cost pass instead of duplicating it (both stores).
    pub fn stampedes_avoided(&self) -> usize {
        (self.plans.stampedes_avoided() + self.costs.stampedes_avoided()) as usize
    }

    pub fn len(&self) -> usize {
        self.plans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot of the whole plan plane (both stores plus the
    /// feedback loop).
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            plans: self.plans.counters(),
            costs: self.costs.counters(),
            feedback_observations: self.observations.load(Ordering::Relaxed),
            feedback_corrections: self.corrections.load(Ordering::Relaxed),
            ratio: self
                .ratio_hist
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .clone(),
        }
    }

    /// The plan for one work-item shape, tuning and profiling on first
    /// use. Returns the entry and whether it was served from the cache.
    pub fn plan_for(
        &self,
        device: &DeviceSpec,
        item: &WorkItem,
    ) -> Result<(PlanEntry, bool), KamiError> {
        self.plan_for_costed(device, item, None)
    }

    /// Like [`PlanCache::plan_for`], but profile the representative
    /// block under a cost-model override. Plans built under different
    /// overrides are cached under distinct keys, so one cache can serve
    /// default-cost and fault-injected launches side by side.
    pub fn plan_for_costed(
        &self,
        device: &DeviceSpec,
        item: &WorkItem,
        cost: Option<&CostConfig>,
    ) -> Result<(PlanEntry, bool), KamiError> {
        let key = self.key(device, item, cost);
        self.plans
            .get_or_try_compute(key, || self.build_plan(device, item, cost))
    }

    /// Record the decomposition a launch chose for this shape, so the
    /// cache maps shape → config **and** decomposition.
    pub fn record_decomposition(
        &self,
        device: &DeviceSpec,
        item: &WorkItem,
        decomposition: Decomposition,
    ) {
        self.record_decomposition_costed(device, item, None, decomposition)
    }

    /// Cost-override variant of [`PlanCache::record_decomposition`].
    pub fn record_decomposition_costed(
        &self,
        device: &DeviceSpec,
        item: &WorkItem,
        cost: Option<&CostConfig>,
        decomposition: Decomposition,
    ) {
        let key = self.key(device, item, cost);
        self.plans
            .update(&key, |entry| entry.decomposition = decomposition);
    }

    fn key(&self, device: &DeviceSpec, item: &WorkItem, cost: Option<&CostConfig>) -> PlanKey {
        (
            device.name.clone(),
            item.m,
            item.n,
            item.k,
            item.precision,
            cost_tag(cost),
        )
    }

    /// The costed [`GemmPlan`] for one shape class, running the cost
    /// pass on first use and serving every repeat from the cache. With
    /// `auto` the §4.7 fallback ladder is applied (matching
    /// [`kami_core::gemm_auto`]); the cached plan then carries the
    /// escalated `smem_fraction`. Callers pair the result with
    /// [`kami_core::gemm_execute_plan`] for execute-only runs.
    ///
    /// Plans are backend-independent (the cost pass never touches
    /// matrix data), so the cache key ignores `cfg.backend` and the
    /// cached plan is normalized to the default backend — whichever
    /// configuration first costed a shape class, a bare
    /// `gemm_execute_plan` of the cached plan runs the reference
    /// simulator. Executors wanting a specific backend pass it
    /// explicitly via [`kami_core::gemm_execute_plan_with`] (as
    /// `kami-serve`'s warm path does with its `ServerConfig` backend).
    pub fn gemm_plan_for(
        &self,
        device: &DeviceSpec,
        cfg: &KamiConfig,
        m: usize,
        n: usize,
        k: usize,
        auto: bool,
    ) -> Result<Arc<GemmPlan>, KamiError> {
        let key: CostKey = (
            device.name.clone(),
            m,
            n,
            k,
            cfg.precision,
            cfg.algo.label(),
            cfg.warps,
            cfg.smem_fraction.to_bits(),
            cost_tag(Some(&cfg.cost)),
            auto,
        );
        let (plan, _) = self.costs.get_or_try_compute(key, || {
            let mut costed = if auto {
                gemm_cost_auto(device, cfg, m, n, k)?
            } else {
                gemm_cost(device, cfg, m, n, k)?
            };
            // Normalize so the cached plan's default-execute backend
            // never depends on which configuration costed the shape
            // class first.
            costed.cfg.backend = BackendKind::default();
            Ok::<_, KamiError>(Arc::new(costed))
        })?;
        Ok(plan)
    }

    /// Record one observed execution of a uniform shape class: the
    /// makespan the model predicted at dispatch vs the cycles the
    /// execution actually took. Feeds the per-shape EWMA of
    /// observed/predicted ratios the `Auto` re-ranker and
    /// [`PlanCache::predict_makespan`] consult. No-op while feedback is
    /// disabled (the control arm records nothing and reads nothing —
    /// behavior is bit-identical to a cache without this method).
    pub fn observe_execution(
        &self,
        device: &DeviceSpec,
        item: &WorkItem,
        cost: Option<&CostConfig>,
        decomposition: Decomposition,
        predicted_cycles: f64,
        observed_cycles: f64,
    ) {
        let fb = &self.config.feedback;
        if !fb.enabled
            || !predicted_cycles.is_finite()
            || predicted_cycles <= 0.0
            || !observed_cycles.is_finite()
            || observed_cycles <= 0.0
        {
            return;
        }
        let ratio = observed_cycles / predicted_cycles;
        let key = self.key(device, item, cost);
        {
            let mut map = self.feedback.lock().unwrap_or_else(|p| p.into_inner());
            let entry = map.entry(key).or_default();
            entry.overall.observe(ratio, fb.alpha);
            entry
                .per_decomposition
                .entry(decomposition)
                .or_default()
                .observe(ratio, fb.alpha);
        }
        self.observations.fetch_add(1, Ordering::Relaxed);
        self.ratio_hist
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .record(ratio);
    }

    /// Multiplier that corrects a model-predicted makespan for this
    /// shape class by its observed/predicted EWMA. Returns exactly
    /// `1.0` unless feedback is enabled, the class has at least
    /// `min_observations` recorded, **and** the ratio diverges from
    /// 1 by more than the configured threshold — so a well-calibrated
    /// model is never perturbed. Prefers the ratio observed under
    /// `decomposition` (when given), falling back to the entry-wide
    /// EWMA; each non-unit return counts one feedback correction.
    pub fn correction_factor(
        &self,
        device: &DeviceSpec,
        item: &WorkItem,
        cost: Option<&CostConfig>,
        decomposition: Option<Decomposition>,
    ) -> f64 {
        let fb = &self.config.feedback;
        if !fb.enabled {
            return 1.0;
        }
        let key = self.key(device, item, cost);
        let ewma = {
            let map = self.feedback.lock().unwrap_or_else(|p| p.into_inner());
            let Some(entry) = map.get(&key) else {
                return 1.0;
            };
            decomposition
                .and_then(|d| entry.per_decomposition.get(&d))
                .filter(|e| e.n >= fb.min_observations)
                .copied()
                .or_else(|| (entry.overall.n >= fb.min_observations).then_some(entry.overall))
        };
        match ewma {
            Some(e) if (e.value - 1.0).abs() > fb.divergence => {
                self.corrections.fetch_add(1, Ordering::Relaxed);
                e.value
            }
            _ => 1.0,
        }
    }

    /// Predicted device-level makespan, in cycles, for `work` on
    /// `device` — the routing query a fleet-level placement layer asks
    /// before committing a request to a replica. The answer comes from
    /// the same scheduler model a dispatch would run, against the same
    /// cached per-block cost quantities: a cold shape class pays the
    /// tuning sweep plus one cost pass on this device and is cached;
    /// every repeat is answered without touching the simulator. The
    /// estimate therefore equals the makespan a solo dispatch of
    /// exactly this work pool would charge the device clock.
    ///
    /// Errors surface device infeasibility (e.g. FP64 work on a device
    /// without FP64 MMA shapes) — a router treats those replicas as
    /// ineligible rather than failing the request.
    ///
    /// When feedback is enabled and the class has diverged from its
    /// predictions, the model makespan is multiplied by the observed
    /// EWMA ratio ([`PlanCache::correction_factor`]) — the fleet router
    /// then places against what executions actually cost, not what the
    /// mis-modeled device claims.
    pub fn predict_makespan(
        &self,
        device: &DeviceSpec,
        work: &crate::work::BlockWork,
        cost: Option<&CostConfig>,
    ) -> Result<f64, crate::error::SchedError> {
        let mut scheduler = crate::schedule::Scheduler::new(device);
        if let Some(c) = cost {
            scheduler = scheduler.with_cost(c.clone());
        }
        let report = scheduler.run(work, self)?;
        let mut makespan = report.makespan_cycles;
        if self.config.feedback.enabled && !work.items.is_empty() && work.is_uniform() {
            makespan *=
                self.correction_factor(device, &work.items[0], cost, Some(report.decomposition));
        }
        Ok(makespan)
    }

    /// Tune the shape, then cost the winner to extract the block-level
    /// cost quantities. Profiling is the cost pass alone — no matrix
    /// data is generated or multiplied — and it goes through the
    /// shape-class cost cache, so a later execute-only run of the same
    /// shape reuses the result. A cost override is applied to the
    /// winner before costing, so the extracted cycles reflect the
    /// overridden model (the tuning sweep itself ranks candidates under
    /// the default cost — the override scales costs, it does not
    /// reorder configurations).
    fn build_plan(
        &self,
        device: &DeviceSpec,
        item: &WorkItem,
        cost: Option<&CostConfig>,
    ) -> Result<PlanEntry, KamiError> {
        if skinny::is_tall_skinny(item.m, item.n, item.k) {
            return self.build_skinny_plan(device, item, cost);
        }
        let mut tuned = self
            .tuner
            .config_for(device, item.m, item.n, item.k, item.precision)?;
        if let Some(c) = cost {
            tuned.cfg.cost = c.clone();
        }
        let plan = self.gemm_plan_for(device, &tuned.cfg, item.m, item.n, item.k, false)?;
        let report = &plan.report;
        let occ = occupancy::analyze(device, report, plan.useful_flops);

        let smem_bw_cycles = (report.smem_bytes_written + report.smem_bytes_read) as f64
            / device.smem_bytes_per_cycle();
        let gmem_bw_cycles = (report.gmem_bytes_read + report.gmem_bytes_written) as f64
            / device.gmem_bytes_per_cycle;
        let bottleneck_cycles = smem_bw_cycles
            .max(report.totals.compute)
            .max(gmem_bw_cycles);
        // Phases lay out as (comm, compute) pairs plus one tail phase.
        let k_stages = (report.phase_costs.len().saturating_sub(1) / 2).max(1);

        Ok(PlanEntry {
            tuned,
            decomposition: Decomposition::Auto,
            cost: BlockCost {
                serial_cycles: report.cycles,
                bottleneck_cycles,
                resident_blocks: occ.resident_blocks,
                k_stages,
                c_tile_bytes: report.gmem_bytes_written,
                flops: plan.useful_flops,
                occupancy: occ,
            },
        })
    }

    /// Tall-skinny items (`m,n ≤ 64`, `k ≥ 10^4`) cannot be tuned or
    /// costed monolithically — no configuration fits the register file
    /// at that depth — so the plan mirrors what the engine actually
    /// runs ([`kami_core::gemm_skinny`]): tune and cost one
    /// [`skinny::SKINNY_CHUNK_K`]-deep chunk, scale by the chunk
    /// count, and add the tree-fixup closed form from
    /// [`kami_core::model::skinny`]. Every deep-k item of the same
    /// `m×n` shares the one chunk-shape tuning sweep — the cache win
    /// the k-split path was designed around. The stored
    /// [`TunedConfig`] is the *chunk's*, matching what
    /// `GemmRequest::resolve_config` hands the executor.
    fn build_skinny_plan(
        &self,
        device: &DeviceSpec,
        item: &WorkItem,
        cost: Option<&CostConfig>,
    ) -> Result<PlanEntry, KamiError> {
        let chunk_k = skinny::SKINNY_CHUNK_K.min(item.k);
        let chunks = skinny::chunk_count(item.k);
        let mut tuned = self
            .tuner
            .config_for(device, item.m, item.n, chunk_k, item.precision)?;
        if let Some(c) = cost {
            tuned.cfg.cost = c.clone();
        }
        let plan = self.gemm_plan_for(device, &tuned.cfg, item.m, item.n, chunk_k, false)?;
        let report = &plan.report;
        let occ = occupancy::analyze(device, report, plan.useful_flops);
        let c_prec = kami_core::gemm::c_precision(item.precision);
        let fixup = skinny::fixup_cycles(
            device,
            &tuned.cfg.cost,
            item.m,
            item.n,
            chunks,
            c_prec,
            0,
            0,
        )
        .map_err(KamiError::Sim)?;

        let cf = chunks as f64;
        let tile_bytes = (item.m * item.n * c_prec.size_bytes()) as u64;
        let fixup_gmem = 3 * tile_bytes * chunks.saturating_sub(1) as u64;
        let smem_bw_cycles = cf * (report.smem_bytes_written + report.smem_bytes_read) as f64
            / device.smem_bytes_per_cycle();
        let gmem_bw_cycles = (cf * (report.gmem_bytes_read + report.gmem_bytes_written) as f64
            + fixup_gmem as f64)
            / device.gmem_bytes_per_cycle;
        let bottleneck_cycles = smem_bw_cycles
            .max(cf * report.totals.compute)
            .max(gmem_bw_cycles);
        let chunk_stages = (report.phase_costs.len().saturating_sub(1) / 2).max(1);

        Ok(PlanEntry {
            tuned,
            decomposition: Decomposition::Auto,
            cost: BlockCost {
                serial_cycles: cf * report.cycles + fixup,
                bottleneck_cycles,
                resident_blocks: occ.resident_blocks,
                k_stages: chunks * chunk_stages,
                c_tile_bytes: report.gmem_bytes_written,
                flops: item.flops(),
                occupancy: occ,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kami_gpu_sim::device::gh200;

    #[test]
    fn plan_is_cached_after_first_use() {
        let dev = gh200();
        let cache = PlanCache::new();
        let item = WorkItem::new(64, 64, 64, Precision::Fp16);
        let (first, was_hit) = cache.plan_for(&dev, &item).unwrap();
        assert!(!was_hit);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        assert!(first.tuned.candidates_tried > 1);
        let (second, was_hit) = cache.plan_for(&dev, &item).unwrap();
        assert!(was_hit);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(second.cost.serial_cycles, first.cost.serial_cycles);
        // Exactly one tuning sweep happened underneath.
        assert_eq!(cache.tuner().misses(), 1);
    }

    #[test]
    fn cost_quantities_are_consistent() {
        let dev = gh200();
        let cache = PlanCache::new();
        let item = WorkItem::new(64, 64, 64, Precision::Fp16);
        let (entry, _) = cache.plan_for(&dev, &item).unwrap();
        let c = &entry.cost;
        assert!(c.serial_cycles > 0.0);
        assert!(c.bottleneck_cycles > 0.0 && c.bottleneck_cycles <= c.serial_cycles);
        assert!(c.resident_blocks >= 1);
        assert!(c.k_stages >= 1);
        assert!(c.c_tile_bytes > 0);
        assert_eq!(c.flops, item.flops());
        // steady_cycles is the reciprocal of the occupancy rate.
        let rate = 1.0 / c.steady_cycles();
        assert!((rate - c.occupancy.rate_per_cycle).abs() / rate < 1e-9);
    }

    #[test]
    fn concurrent_lookups_tune_once_logically() {
        let dev = gh200();
        let cache = PlanCache::new();
        let item = WorkItem::new(32, 32, 32, Precision::Fp64);
        cache.plan_for(&dev, &item).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let (_, hit) = cache.plan_for(&dev, &item).unwrap();
                    assert!(hit);
                });
            }
        });
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cost_cache_skips_the_cost_pass_on_repeats() {
        let dev = gh200();
        let cache = PlanCache::new();
        let cfg = kami_core::KamiConfig::new(kami_core::Algo::OneD, Precision::Fp16);
        let first = cache.gemm_plan_for(&dev, &cfg, 64, 64, 64, false).unwrap();
        assert_eq!((cache.cost_hits(), cache.cost_misses()), (0, 1));
        let second = cache.gemm_plan_for(&dev, &cfg, 64, 64, 64, false).unwrap();
        assert_eq!((cache.cost_hits(), cache.cost_misses()), (1, 1));
        // Same Arc — the repeat did not rerun the cost pass.
        assert!(Arc::ptr_eq(&first, &second));
        // A different shape class (other warp count) costs separately.
        let wide = cfg.clone().with_warps(16);
        cache.gemm_plan_for(&dev, &wide, 64, 64, 64, false).unwrap();
        assert_eq!(cache.cost_misses(), 2);
    }

    #[test]
    fn build_plan_goes_through_the_cost_cache() {
        let dev = gh200();
        let cache = PlanCache::new();
        let item = WorkItem::new(64, 64, 64, Precision::Fp16);
        cache.plan_for(&dev, &item).unwrap();
        // Tuning profiled the winner via the cost cache exactly once.
        assert_eq!(cache.cost_misses(), 1);
        let (entry, _) = cache.plan_for(&dev, &item).unwrap();
        // An execute-only consumer asking for the tuned shape class hits.
        let plan = cache
            .gemm_plan_for(&dev, &entry.tuned.cfg, 64, 64, 64, false)
            .unwrap();
        assert!(cache.cost_hits() >= 1);
        assert_eq!(plan.report.cycles, entry.cost.serial_cycles);
    }

    #[test]
    fn predict_makespan_matches_scheduler_and_caches() {
        let dev = gh200();
        let cache = PlanCache::new();
        let work = crate::work::BlockWork::uniform(64, 64, 64, Precision::Fp16, 8);
        let pred = cache.predict_makespan(&dev, &work, None).unwrap();
        let report = crate::schedule::Scheduler::new(&dev)
            .run(&work, &cache)
            .unwrap();
        assert_eq!(
            pred, report.makespan_cycles,
            "routing query must equal the makespan a dispatch would charge"
        );
        let misses = cache.misses();
        cache.predict_makespan(&dev, &work, None).unwrap();
        assert_eq!(
            cache.misses(),
            misses,
            "repeat routing query must answer from the cache"
        );
    }

    #[test]
    fn predict_makespan_surfaces_infeasible_devices() {
        let dev = kami_gpu_sim::device::rtx5090();
        let cache = PlanCache::new();
        let work = crate::work::BlockWork::uniform(32, 32, 32, Precision::Fp64, 4);
        assert!(
            cache.predict_makespan(&dev, &work, None).is_err(),
            "FP64 on a device without FP64 MMA shapes must be reported ineligible"
        );
    }

    #[test]
    fn skinny_items_plan_via_the_chunk_shape() {
        let dev = gh200();
        let cache = PlanCache::new();
        let item = WorkItem::new(16, 16, 65536, Precision::Fp16);
        let (entry, _) = cache.plan_for(&dev, &item).unwrap();
        let c = &entry.cost;
        assert_eq!(c.flops, item.flops());
        let chunks = skinny::chunk_count(65536);
        assert!(
            c.k_stages >= chunks,
            "k-split granularity covers every chunk"
        );
        assert!(c.serial_cycles > 0.0 && c.bottleneck_cycles <= c.serial_cycles);
        // The tuned config is the chunk's, exactly what the executor gets.
        assert_eq!(cache.tuner().misses(), 1);
        // A deeper item of the same m x n reuses that one tuning sweep
        // *and* the chunk's cost pass — the k-split cache win.
        let deeper = WorkItem::new(16, 16, 131072, Precision::Fp16);
        cache.plan_for(&dev, &deeper).unwrap();
        assert_eq!(cache.tuner().misses(), 1);
        assert_eq!(cache.cost_misses(), 1);
    }

    #[test]
    fn decomposition_is_recorded() {
        let dev = gh200();
        let cache = PlanCache::new();
        let item = WorkItem::new(64, 64, 64, Precision::Fp16);
        cache.plan_for(&dev, &item).unwrap();
        cache.record_decomposition(&dev, &item, Decomposition::StreamK);
        let (entry, _) = cache.plan_for(&dev, &item).unwrap();
        assert_eq!(entry.decomposition, Decomposition::StreamK);
    }
}
