//! Work streams: the block-GEMM items a device-level schedule consumes.
//!
//! Every producer in the workspace reduces to the same currency — "one
//! thread block computes one `m×n×k` product at some precision". This
//! module adapts each producer to that currency: uniform batched
//! streams (`kami_core::batched`), ragged batches, block-sparse SpMM /
//! SpGEMM block lists, and the paper's synthetic 16 384-block workload
//! (§5.2's block-level benchmark setting).

use kami_gpu_sim::{Matrix, Precision};
use kami_sparse::BlockSparseMatrix;

/// One block-GEMM work item: the shape a single thread block computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkItem {
    pub m: usize,
    pub n: usize,
    pub k: usize,
    pub precision: Precision,
}

impl WorkItem {
    pub fn new(m: usize, n: usize, k: usize, precision: Precision) -> Self {
        WorkItem { m, n, k, precision }
    }

    /// Useful flops of this block product (2mnk).
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }
}

/// A stream of block-GEMM work items destined for one device launch.
#[derive(Debug, Clone)]
pub struct BlockWork {
    pub items: Vec<WorkItem>,
}

/// Block count of the paper's device-level benchmark workloads
/// ("launching 16384 thread blocks", §5.2).
pub const PAPER_BLOCK_COUNT: usize = 16_384;

impl BlockWork {
    pub fn new(items: Vec<WorkItem>) -> Self {
        BlockWork { items }
    }

    /// `count` identical `m×n×k` blocks — the uniform batched regime.
    pub fn uniform(m: usize, n: usize, k: usize, precision: Precision, count: usize) -> Self {
        BlockWork {
            items: vec![WorkItem::new(m, n, k, precision); count],
        }
    }

    /// The paper's synthetic workload: 16 384 identical blocks.
    pub fn synthetic(m: usize, n: usize, k: usize, precision: Precision) -> Self {
        Self::uniform(m, n, k, precision, PAPER_BLOCK_COUNT)
    }

    /// One item per entry of a batched-GEMM input (the
    /// [`kami_core::batched`] interface) — shapes may be ragged.
    pub fn from_batched(pairs: &[(Matrix, Matrix)], precision: Precision) -> Self {
        BlockWork {
            items: pairs
                .iter()
                .map(|(a, b)| WorkItem::new(a.rows(), b.cols(), a.cols(), precision))
                .collect(),
        }
    }

    /// SpMM block list: one item per stored block of sparse `a`, each
    /// multiplying a `block×block` tile into all `n` columns of the
    /// dense operand.
    pub fn from_spmm(a: &BlockSparseMatrix, dense_cols: usize, precision: Precision) -> Self {
        let blk = a.block_size();
        BlockWork {
            items: a
                .iter_blocks()
                .map(|_| WorkItem::new(blk, dense_cols, blk, precision))
                .collect(),
        }
    }

    /// SpGEMM block list: one item per contributing block pair
    /// `A[i,p]·B[p,j]` (the numeric phase's multiply stream).
    pub fn from_spgemm(a: &BlockSparseMatrix, b: &BlockSparseMatrix, precision: Precision) -> Self {
        let blk = a.block_size();
        let mut items = Vec::new();
        for (_, bp, _) in a.iter_blocks() {
            items.extend(
                b.row_blocks(bp)
                    .map(|_| WorkItem::new(blk, blk, blk, precision)),
            );
        }
        BlockWork { items }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether every item shares one shape (enables Stream-K splitting;
    /// ragged streams schedule data-parallel via LPT).
    pub fn is_uniform(&self) -> bool {
        match self.items.split_first() {
            Some((first, rest)) => rest.iter().all(|i| i == first),
            None => true,
        }
    }

    /// Total useful flops across the stream.
    pub fn total_flops(&self) -> u64 {
        self.items.iter().map(WorkItem::flops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kami_sparse::{gen::random_block_sparse, BlockOrder};

    #[test]
    fn uniform_and_synthetic_counts() {
        let w = BlockWork::uniform(64, 64, 64, Precision::Fp16, 7);
        assert_eq!(w.len(), 7);
        assert!(w.is_uniform());
        assert_eq!(w.total_flops(), 7 * 2 * 64 * 64 * 64);
        let s = BlockWork::synthetic(64, 64, 64, Precision::Fp16);
        assert_eq!(s.len(), PAPER_BLOCK_COUNT);
    }

    #[test]
    fn from_batched_reads_shapes() {
        let pairs = vec![
            (Matrix::zeros(16, 32), Matrix::zeros(32, 8)),
            (Matrix::zeros(64, 64), Matrix::zeros(64, 64)),
        ];
        let w = BlockWork::from_batched(&pairs, Precision::Fp64);
        assert_eq!(w.items[0], WorkItem::new(16, 8, 32, Precision::Fp64));
        assert_eq!(w.items[1], WorkItem::new(64, 64, 64, Precision::Fp64));
        assert!(!w.is_uniform());
    }

    #[test]
    fn from_spmm_counts_stored_blocks() {
        let a = random_block_sparse(64, 64, 16, 0.5, BlockOrder::ZMorton, 3);
        let w = BlockWork::from_spmm(&a, 128, Precision::Fp16);
        assert_eq!(w.len(), a.nnz_blocks());
        assert!(w.is_uniform());
        assert_eq!(w.items[0], WorkItem::new(16, 128, 16, Precision::Fp16));
    }

    #[test]
    fn from_spgemm_counts_block_pairs() {
        let a = random_block_sparse(64, 64, 16, 0.6, BlockOrder::RowMajor, 4);
        let b = random_block_sparse(64, 64, 16, 0.6, BlockOrder::RowMajor, 5);
        let w = BlockWork::from_spgemm(&a, &b, Precision::Fp16);
        // Count independently: Σ over stored A-blocks of |B row bp|.
        let mut expect = 0usize;
        for (_, bp, _) in a.iter_blocks() {
            expect += b.row_blocks(bp).count();
        }
        assert_eq!(w.len(), expect);
        assert!(expect > 0, "0.6 density should produce contributing pairs");
    }

    #[test]
    fn empty_stream_is_uniform() {
        assert!(BlockWork::new(Vec::new()).is_uniform());
    }
}
