//! Property tests for the bounded plan-cache plane: budgets hold under
//! arbitrary load, the Bloom doorkeeper never locks a key out past its
//! second sighting, eviction never changes what a recomputed plan
//! contains, and concurrent cold misses coalesce into one compute.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use kami_core::{Algo, KamiConfig};
use kami_gpu_sim::{device, Precision};
use kami_sched::{AdmissionPolicy, BoundedCache, CacheConfig, PlanCache};

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn payload(len: usize) -> Vec<u8> {
    vec![0xAB; len]
}

/// S3a (deterministic arm): 10^5 random shape classes through a tight
/// byte+entry budget; the resident account must respect both limits
/// after every single insert.
#[test]
fn budgets_hold_under_hundred_thousand_random_classes() {
    const MAX_BYTES: usize = 64 * 1024;
    const MAX_ENTRIES: usize = 512;
    let config = CacheConfig {
        max_entries: Some(MAX_ENTRIES),
        max_bytes: Some(MAX_BYTES),
        ..CacheConfig::default()
    };
    let cache: BoundedCache<u64, Vec<u8>> = BoundedCache::new(&config);
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED);
    for step in 0..100_000u64 {
        let key = rng.gen_range(0..8_192u64);
        let len = rng.gen_range(1..512usize);
        let (_, _) = cache
            .get_or_try_compute(key, || Ok::<_, ()>(payload(len)))
            .unwrap();
        assert!(
            cache.resident_bytes() <= MAX_BYTES,
            "step {step}: resident {} > budget {MAX_BYTES}",
            cache.resident_bytes()
        );
        assert!(
            cache.len() <= MAX_ENTRIES,
            "step {step}: {} entries > cap {MAX_ENTRIES}",
            cache.len()
        );
    }
    assert!(cache.evictions() > 0, "load far exceeds budget; must evict");
}

proptest! {
    /// S3a (randomized arm): arbitrary budgets, keys, and value sizes —
    /// the invariant is unconditional.
    #[test]
    fn budgets_hold_for_arbitrary_configs(
        max_bytes in 64usize..16_384,
        max_entries in 1usize..64,
        seed in 0u64..1_000_000,
        n_ops in 1usize..200,
    ) {
        let config = CacheConfig {
            max_entries: Some(max_entries),
            max_bytes: Some(max_bytes),
            ..CacheConfig::default()
        };
        let cache: BoundedCache<u64, Vec<u8>> = BoundedCache::new(&config);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..n_ops {
            let key = rng.gen_range(0..256u64);
            let len = rng.gen_range(1..1_024usize);
            let _ = cache.get_or_try_compute(key, || Ok::<_, ()>(payload(len)));
            prop_assert!(cache.resident_bytes() <= max_bytes);
            prop_assert!(cache.len() <= max_entries);
        }
    }

    /// S3c: the doorkeeper has no false negatives — after any key's
    /// second *compute* (i.e. second sighting while absent), the key
    /// is resident, whatever interleaving of other keys happened.
    #[test]
    fn bloom_admits_any_key_seen_twice(
        seed in 0u64..1_000_000,
        n_ops in 1usize..300,
    ) {
        let config = CacheConfig {
            admission: AdmissionPolicy::bloom(),
            ..CacheConfig::default()
        };
        let cache: BoundedCache<u64, Vec<u8>> = BoundedCache::new(&config);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut computes = std::collections::HashMap::<u64, u32>::new();
        for _ in 0..n_ops {
            let key = rng.gen_range(0..64u64);
            let (_, hit) = cache
                .get_or_try_compute(key, || Ok::<_, ()>(payload(8)))
                .unwrap();
            if !hit {
                *computes.entry(key).or_insert(0) += 1;
            }
            if computes.get(&key).copied().unwrap_or(0) >= 2 {
                prop_assert!(
                    cache.contains(&key),
                    "key {} computed twice yet still not resident", key
                );
            }
        }
    }
}

/// S3b: evict a costed plan by capacity pressure, re-request the same
/// shape class, and the recomputed plan must be bit-identical to the
/// first — eviction is a performance event, never a semantics event.
#[test]
fn readmitted_key_recomputes_bit_identical_plan() {
    let gh200 = device::gh200();
    let config = CacheConfig {
        max_entries: Some(1),
        ..CacheConfig::default()
    };
    let plans = PlanCache::with_config(config);
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);

    let first = plans.gemm_plan_for(&gh200, &cfg, 64, 64, 64, true).unwrap();
    let first_dump = format!("{first:?}");
    let first_cycles = first.report.totals.compute.to_bits();

    // A different shape class evicts the first (entry budget = 1)...
    plans
        .gemm_plan_for(&gh200, &cfg, 32, 128, 64, true)
        .unwrap();
    let evicted_misses = plans.cost_misses();

    // ...so the re-request recomputes rather than hits.
    let again = plans.gemm_plan_for(&gh200, &cfg, 64, 64, 64, true).unwrap();
    assert_eq!(plans.cost_misses(), evicted_misses + 1, "must recompute");
    assert_eq!(again.report.totals.compute.to_bits(), first_cycles);
    assert_eq!(format!("{again:?}"), first_dump, "recomputed plan differs");
}

/// S2 regression: two threads race a cold shape class; single-flight
/// must coalesce them into exactly one cost pass, with the waiter
/// counted as a hit plus one avoided stampede.
#[test]
fn concurrent_cold_misses_run_one_cost_pass() {
    let gh200 = device::gh200();
    let plans = PlanCache::new();
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
    let barrier = Barrier::new(2);
    let errors = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                barrier.wait();
                if plans.gemm_plan_for(&gh200, &cfg, 96, 96, 96, true).is_err() {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    assert_eq!(errors.load(Ordering::Relaxed), 0);
    assert_eq!(plans.cost_misses(), 1, "exactly one leader computes");
    assert_eq!(plans.cost_hits(), 1, "the other thread is served as a hit");
    // Whether the hit waited on the in-flight compute (a stampede
    // avoided) or landed after insertion depends on timing; the exact
    // waiter accounting is pinned deterministically in the unit tests.
    assert!(plans.stampedes_avoided() <= 1);
}
