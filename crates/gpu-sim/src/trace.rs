//! Execution traces: a per-op timeline of one block kernel, exportable
//! as a Chrome-tracing (`chrome://tracing` / Perfetto) JSON file.
//!
//! The engine lays phases out back to back on the simulated clock and
//! spreads each phase's ops across it proportionally to their individual
//! costs, giving a faithful *visual* account of where cycles go: the
//! broadcast stores, the latency-exposed loads, the MMA bursts, and the
//! barriers between them.

use crate::cost::CostMode;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Category of a traced op (maps to a Chrome-trace track color).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    GlobalLoad,
    GlobalStore,
    SharedStore,
    SharedLoad,
    RegCopy,
    Mma,
    Meta,
    Barrier,
}

impl TraceKind {
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::GlobalLoad => "gmem.load",
            TraceKind::GlobalStore => "gmem.store",
            TraceKind::SharedStore => "smem.store",
            TraceKind::SharedLoad => "smem.load",
            TraceKind::RegCopy => "reg.copy",
            TraceKind::Mma => "mma",
            TraceKind::Meta => "smem.meta",
            TraceKind::Barrier => "barrier",
        }
    }
}

/// One traced op occurrence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceEvent {
    pub warp: usize,
    pub phase: usize,
    pub kind: TraceKind,
    /// Payload moved (bytes) or computed (flops), for tooltips.
    pub amount: u64,
    /// Simulated start cycle.
    pub start: f64,
    /// Simulated duration in cycles.
    pub duration: f64,
    /// Human-readable detail (fragment name etc.).
    pub detail: String,
}

/// A full block-kernel trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    pub device: String,
    pub mode: Option<CostMode>,
    pub events: Vec<TraceEvent>,
    /// Phase boundaries in cycles: `phase_start[i]` is where phase `i`
    /// begins; one trailing entry marks the end of the kernel.
    pub phase_starts: Vec<f64>,
}

impl Trace {
    pub fn total_cycles(&self) -> f64 {
        self.phase_starts.last().copied().unwrap_or(0.0)
    }

    /// Events of one warp, in time order.
    pub fn warp_events(&self, warp: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.warp == warp)
    }

    /// Cycles attributed to one kind across the whole trace.
    pub fn cycles_by_kind(&self, kind: TraceKind) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.duration)
            .sum()
    }

    /// Merge another trace into this one, offset onto this trace's
    /// clock: events shift by `offset_cycles` and the final phase
    /// boundary extends to cover the absorbed trace's end. Device/mode
    /// are adopted from the first absorbed trace. This is the one merge
    /// primitive every multi-kernel timeline (scheduler SM tracks,
    /// service groups) is built from.
    pub fn absorb(&mut self, other: &Trace, offset_cycles: f64) {
        if self.device.is_empty() {
            self.device = other.device.clone();
            self.mode = other.mode;
        }
        self.events.extend(other.events.iter().map(|e| {
            let mut e = e.clone();
            e.start += offset_cycles;
            e
        }));
        let end = other.total_cycles() + offset_cycles;
        match self.phase_starts.as_mut_slice() {
            [] => self.phase_starts = vec![0.0, end],
            [.., last] => *last = last.max(end),
        }
    }

    /// Assemble a device-level trace from per-track event lists that
    /// each start at cycle 0 and run concurrently (e.g. one track per
    /// SM, with the `warp` field carrying the track index). One phase
    /// spans the whole timeline, ending at `end_cycles`.
    pub fn from_tracks(
        device: impl Into<String>,
        mode: Option<CostMode>,
        end_cycles: f64,
        tracks: Vec<Vec<TraceEvent>>,
    ) -> Trace {
        Trace {
            device: device.into(),
            mode,
            events: tracks.into_iter().flatten().collect(),
            phase_starts: vec![0.0, end_cycles],
        }
    }

    /// Serialize as a Chrome-tracing JSON array (open in
    /// `chrome://tracing` or Perfetto; 1 simulated cycle = 1 µs).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[\n");
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \
                 \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 0, \"tid\": {}, \
                 \"args\": {{\"phase\": {}, \"amount\": {}, \"detail\": \"{}\"}}}}",
                e.kind.label(),
                e.kind.label(),
                e.start,
                e.duration.max(0.001),
                e.warp,
                e.phase,
                e.amount,
                json_escape(&e.detail),
            );
        }
        out.push_str("\n]\n");
        out
    }

    /// Compact per-warp text rendering (one line per event) for quick
    /// terminal inspection.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events over {:.1} cycles on {}",
            self.events.len(),
            self.total_cycles(),
            self.device
        );
        for e in &self.events {
            let _ = writeln!(
                out,
                "  [{:>8.1} +{:>6.1}] w{} p{} {:<11} {:>8} {}",
                e.start,
                e.duration,
                e.warp,
                e.phase,
                e.kind.label(),
                e.amount,
                e.detail
            );
        }
        out
    }
}

/// Escape `s` for embedding in a JSON string literal: quotes and
/// backslashes get a backslash, control characters become `\n`-style
/// short escapes or `\u00XX`.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            device: "test".into(),
            mode: Some(CostMode::Serial),
            events: vec![
                TraceEvent {
                    warp: 0,
                    phase: 0,
                    kind: TraceKind::SharedStore,
                    amount: 128,
                    start: 0.0,
                    duration: 1.0,
                    detail: "Bi".into(),
                },
                TraceEvent {
                    warp: 1,
                    phase: 1,
                    kind: TraceKind::Mma,
                    amount: 4096,
                    start: 1.0,
                    duration: 4.0,
                    detail: "Ci += Ai x BRecv".into(),
                },
            ],
            phase_starts: vec![0.0, 1.0, 5.0],
        }
    }

    #[test]
    fn totals_and_filters() {
        let t = sample();
        assert_eq!(t.total_cycles(), 5.0);
        assert_eq!(t.warp_events(0).count(), 1);
        assert_eq!(t.cycles_by_kind(TraceKind::Mma), 4.0);
        assert_eq!(t.cycles_by_kind(TraceKind::Barrier), 0.0);
    }

    #[test]
    fn chrome_json_is_valid_json() {
        let json = sample().to_chrome_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(parsed.as_array().unwrap().len(), 2);
        assert_eq!(parsed[0]["tid"], 0);
        assert_eq!(parsed[1]["args"]["amount"], 4096);
    }

    #[test]
    fn chrome_json_escapes_hostile_details() {
        let mut t = sample();
        let hostile = "quote \" backslash \\ newline \n tab \t bell \u{7} done";
        t.events[0].detail = hostile.into();
        let json = t.to_chrome_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        // Parse-back must reproduce the exact original string, not a
        // sanitized lookalike.
        assert_eq!(parsed[0]["args"]["detail"].as_str().unwrap(), hostile);
    }

    #[test]
    fn absorb_offsets_events_and_extends_the_end() {
        let mut merged = Trace::default();
        merged.absorb(&sample(), 100.0);
        assert_eq!(merged.device, "test");
        assert_eq!(merged.mode, Some(CostMode::Serial));
        assert_eq!(merged.events[0].start, 100.0);
        assert_eq!(merged.total_cycles(), 105.0);
        // A second, earlier-ending absorb must not shrink the timeline.
        let mut short = sample();
        short.phase_starts = vec![0.0, 1.0];
        short.events.truncate(1);
        merged.absorb(&short, 10.0);
        assert_eq!(merged.total_cycles(), 105.0);
        assert_eq!(merged.events.len(), 3);
    }

    #[test]
    fn from_tracks_flattens_into_one_phase() {
        let e = |warp: usize, start: f64| TraceEvent {
            warp,
            phase: 0,
            kind: TraceKind::Mma,
            amount: 1,
            start,
            duration: 1.0,
            detail: String::new(),
        };
        let t = Trace::from_tracks(
            "dev",
            None,
            42.0,
            vec![vec![e(0, 0.0), e(0, 1.0)], vec![e(1, 0.0)]],
        );
        assert_eq!(t.events.len(), 3);
        assert_eq!(t.phase_starts, vec![0.0, 42.0]);
        assert_eq!(t.total_cycles(), 42.0);
    }

    #[test]
    fn text_rendering_mentions_every_event() {
        let text = sample().render_text();
        assert!(text.contains("smem.store"));
        assert!(text.contains("mma"));
        assert!(text.contains("2 events"));
    }
}
