//! Execution traces: a per-op timeline of one block kernel, exportable
//! as a Chrome-tracing (`chrome://tracing` / Perfetto) JSON file.
//!
//! The engine lays phases out back to back on the simulated clock and
//! spreads each phase's ops across it proportionally to their individual
//! costs, giving a faithful *visual* account of where cycles go: the
//! broadcast stores, the latency-exposed loads, the MMA bursts, and the
//! barriers between them.

use crate::cost::CostMode;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Category of a traced op (maps to a Chrome-trace track color).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    GlobalLoad,
    GlobalStore,
    SharedStore,
    SharedLoad,
    RegCopy,
    Mma,
    Meta,
    Barrier,
}

impl TraceKind {
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::GlobalLoad => "gmem.load",
            TraceKind::GlobalStore => "gmem.store",
            TraceKind::SharedStore => "smem.store",
            TraceKind::SharedLoad => "smem.load",
            TraceKind::RegCopy => "reg.copy",
            TraceKind::Mma => "mma",
            TraceKind::Meta => "smem.meta",
            TraceKind::Barrier => "barrier",
        }
    }
}

/// One traced op occurrence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceEvent {
    pub warp: usize,
    pub phase: usize,
    pub kind: TraceKind,
    /// Payload moved (bytes) or computed (flops), for tooltips.
    pub amount: u64,
    /// Simulated start cycle.
    pub start: f64,
    /// Simulated duration in cycles.
    pub duration: f64,
    /// Human-readable detail (fragment name etc.).
    pub detail: String,
}

/// A full block-kernel trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    pub device: String,
    pub mode: Option<CostMode>,
    pub events: Vec<TraceEvent>,
    /// Phase boundaries in cycles: `phase_start[i]` is where phase `i`
    /// begins; one trailing entry marks the end of the kernel.
    pub phase_starts: Vec<f64>,
}

impl Trace {
    pub fn total_cycles(&self) -> f64 {
        self.phase_starts.last().copied().unwrap_or(0.0)
    }

    /// Events of one warp, in time order.
    pub fn warp_events(&self, warp: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.warp == warp)
    }

    /// Cycles attributed to one kind across the whole trace.
    pub fn cycles_by_kind(&self, kind: TraceKind) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.duration)
            .sum()
    }

    /// Serialize as a Chrome-tracing JSON array (open in
    /// `chrome://tracing` or Perfetto; 1 simulated cycle = 1 µs).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[\n");
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \
                 \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 0, \"tid\": {}, \
                 \"args\": {{\"phase\": {}, \"amount\": {}, \"detail\": \"{}\"}}}}",
                e.kind.label(),
                e.kind.label(),
                e.start,
                e.duration.max(0.001),
                e.warp,
                e.phase,
                e.amount,
                json_escape(&e.detail),
            );
        }
        out.push_str("\n]\n");
        out
    }

    /// Compact per-warp text rendering (one line per event) for quick
    /// terminal inspection.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events over {:.1} cycles on {}",
            self.events.len(),
            self.total_cycles(),
            self.device
        );
        for e in &self.events {
            let _ = writeln!(
                out,
                "  [{:>8.1} +{:>6.1}] w{} p{} {:<11} {:>8} {}",
                e.start,
                e.duration,
                e.warp,
                e.phase,
                e.kind.label(),
                e.amount,
                e.detail
            );
        }
        out
    }
}

/// Escape `s` for embedding in a JSON string literal: quotes and
/// backslashes get a backslash, control characters become `\n`-style
/// short escapes or `\u00XX`.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            device: "test".into(),
            mode: Some(CostMode::Serial),
            events: vec![
                TraceEvent {
                    warp: 0,
                    phase: 0,
                    kind: TraceKind::SharedStore,
                    amount: 128,
                    start: 0.0,
                    duration: 1.0,
                    detail: "Bi".into(),
                },
                TraceEvent {
                    warp: 1,
                    phase: 1,
                    kind: TraceKind::Mma,
                    amount: 4096,
                    start: 1.0,
                    duration: 4.0,
                    detail: "Ci += Ai x BRecv".into(),
                },
            ],
            phase_starts: vec![0.0, 1.0, 5.0],
        }
    }

    #[test]
    fn totals_and_filters() {
        let t = sample();
        assert_eq!(t.total_cycles(), 5.0);
        assert_eq!(t.warp_events(0).count(), 1);
        assert_eq!(t.cycles_by_kind(TraceKind::Mma), 4.0);
        assert_eq!(t.cycles_by_kind(TraceKind::Barrier), 0.0);
    }

    #[test]
    fn chrome_json_is_valid_json() {
        let json = sample().to_chrome_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(parsed.as_array().unwrap().len(), 2);
        assert_eq!(parsed[0]["tid"], 0);
        assert_eq!(parsed[1]["args"]["amount"], 4096);
    }

    #[test]
    fn chrome_json_escapes_hostile_details() {
        let mut t = sample();
        let hostile = "quote \" backslash \\ newline \n tab \t bell \u{7} done";
        t.events[0].detail = hostile.into();
        let json = t.to_chrome_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        // Parse-back must reproduce the exact original string, not a
        // sanitized lookalike.
        assert_eq!(parsed[0]["args"]["detail"].as_str().unwrap(), hostile);
    }

    #[test]
    fn text_rendering_mentions_every_event() {
        let text = sample().render_text();
        assert!(text.contains("smem.store"));
        assert!(text.contains("mma"));
        assert!(text.contains("2 events"));
    }
}
