//! Execution reports: the simulator's equivalent of `clock()`-based
//! measurement plus occupancy/traffic counters.

use crate::cost::{CostMode, PhaseCost};
use crate::device::DeviceSpec;
use crate::memory::regfile::RegisterUsage;
use serde::{Deserialize, Serialize};

/// Everything measured while running one block kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionReport {
    pub device_name: String,
    /// Warps in the block (`p`).
    pub warps: usize,
    /// Cost-composition mode the cycle total was computed under.
    pub mode: CostMode,
    /// Cycle breakdown per barrier-delimited phase.
    pub phase_costs: Vec<PhaseCost>,
    /// Component-wise totals over all phases.
    pub totals: PhaseCost,
    /// Total block cycles under `mode`.
    pub cycles: f64,
    /// Tensor-core flops charged (padded to instruction granularity).
    pub flops_charged: u64,
    /// Shared-memory traffic: the measured communication volume. The
    /// paper's `V_cm` is writes + reads (Formulas 1/5/9).
    pub smem_bytes_written: u64,
    pub smem_bytes_read: u64,
    /// Shared-memory footprint the block would have to reserve.
    pub smem_extent: usize,
    /// Global-memory traffic of this kernel.
    pub gmem_bytes_read: u64,
    pub gmem_bytes_written: u64,
    /// Per-warp register usage (theoretical and live-range-measured).
    pub registers_per_warp: Vec<RegisterUsage>,
}

impl ExecutionReport {
    /// Communication volume `V_cm` in bytes (writes + reads), the
    /// quantity bounded by Formulas 1, 5, and 9.
    pub fn comm_volume(&self) -> u64 {
        self.smem_bytes_written + self.smem_bytes_read
    }

    /// Approximate heap bytes this report keeps resident (device name,
    /// per-phase breakdown, per-warp register usage) — what a bounded
    /// plan cache charges against its byte budget beyond the inline
    /// struct size.
    pub fn approx_heap_bytes(&self) -> usize {
        self.device_name.capacity()
            + self.phase_costs.capacity() * std::mem::size_of::<PhaseCost>()
            + self.registers_per_warp.capacity() * std::mem::size_of::<RegisterUsage>()
    }

    /// Worst per-warp register usage in the block.
    pub fn max_registers(&self) -> RegisterUsage {
        self.registers_per_warp
            .iter()
            .copied()
            .max_by_key(|u| u.measured_regs)
            .unwrap_or(RegisterUsage {
                theoretical_regs: 0,
                measured_regs: 0,
            })
    }

    /// Communication cycles grouped by *algorithm stage*, the granularity
    /// Formulas 2, 6, and 10 are stated at. A KAMI stage is a run of
    /// barrier-delimited phases (store phase, then load phase) closed by
    /// the phase that performs the stage's MMAs, so each returned entry
    /// is directly comparable to the closed-form `T_cm` per stage.
    /// Communication issued *inside* an MMA phase is the next stage's
    /// broadcast store (the kernels issue it right after the `mma`, with
    /// no barrier in between), so it is credited to the stage it feeds —
    /// the same attribution the closed forms use. Head/tail phases with
    /// no communication contribute nothing.
    pub fn comm_stage_cycles(&self) -> Vec<f64> {
        let mut stages = Vec::new();
        let mut acc = 0.0;
        for p in &self.phase_costs {
            if p.compute > 0.0 {
                if acc > 0.0 {
                    stages.push(acc);
                }
                acc = p.comm;
            } else {
                acc += p.comm;
            }
        }
        if acc > 0.0 {
            stages.push(acc);
        }
        stages
    }

    /// Number of communication stages observed (length of
    /// [`Self::comm_stage_cycles`]).
    pub fn comm_stages(&self) -> usize {
        self.comm_stage_cycles().len()
    }

    /// Cycles spent on-chip (communication + compute + register moves),
    /// excluding global-memory I/O — the metric the paper's block-level
    /// benchmarks report ("each looping 1000 times inside the CUDA kernel
    /// to ignore global I/O costs", Fig 3).
    pub fn on_chip_cycles(&self) -> f64 {
        match self.mode {
            CostMode::Serial => self.totals.comm + self.totals.compute + self.totals.reg,
            CostMode::Overlap => {
                // Recompose per phase to preserve max semantics.
                self.phase_costs
                    .iter()
                    .map(|p| p.comm.max(p.compute) + p.reg)
                    .sum()
            }
        }
    }

    /// Wall-clock seconds for one block on `device`.
    pub fn seconds(&self, device: &DeviceSpec) -> f64 {
        self.cycles / device.clock_hz()
    }

    /// Device-wide TFLOPS when every SM runs identical blocks back to
    /// back, counting only `useful_flops` per block (padding waste and
    /// redundant work by a strategy lowers its score, as on hardware) and
    /// excluding global I/O — the paper's block-level reporting metric.
    pub fn block_tflops(&self, device: &DeviceSpec, useful_flops: u64) -> f64 {
        let cycles = self.on_chip_cycles().max(1e-9);
        useful_flops as f64 / cycles * device.num_sms as f64 * device.clock_hz() / 1e12
    }

    /// Device-wide TFLOPS including global-memory cycles — the metric for
    /// batched / device-level workloads where each block streams its own
    /// data from HBM.
    pub fn device_tflops(&self, device: &DeviceSpec, useful_flops: u64) -> f64 {
        let cycles = self.cycles.max(1e-9);
        useful_flops as f64 / cycles * device.num_sms as f64 * device.clock_hz() / 1e12
    }

    /// Fraction of total cycles spent communicating (Fig 15 breakdown).
    pub fn comm_fraction(&self) -> f64 {
        if self.cycles <= 0.0 {
            0.0
        } else {
            self.totals.comm / self.cycles
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::gh200;

    fn report(comm: f64, compute: f64, global: f64) -> ExecutionReport {
        let pc = PhaseCost {
            comm,
            compute,
            global,
            reg: 0.0,
        };
        ExecutionReport {
            device_name: "test".into(),
            warps: 4,
            mode: CostMode::Serial,
            phase_costs: vec![pc],
            totals: pc,
            cycles: comm + compute + global,
            flops_charged: 1000,
            smem_bytes_written: 100,
            smem_bytes_read: 300,
            smem_extent: 512,
            gmem_bytes_read: 0,
            gmem_bytes_written: 0,
            registers_per_warp: vec![],
        }
    }

    #[test]
    fn comm_volume_is_writes_plus_reads() {
        assert_eq!(report(1.0, 1.0, 0.0).comm_volume(), 400);
    }

    #[test]
    fn on_chip_excludes_global() {
        let r = report(10.0, 20.0, 500.0);
        assert_eq!(r.on_chip_cycles(), 30.0);
    }

    #[test]
    fn tflops_scale_with_sms_and_clock() {
        let dev = gh200();
        let r = report(50.0, 50.0, 0.0);
        let t = r.block_tflops(&dev, 10_000);
        // 10000 flops / 100 cycles * 132 SMs * 1.98e9 Hz = 26.1 TFLOPS.
        assert!((t - 26.136).abs() < 0.01, "t = {t}");
        assert_eq!(r.device_tflops(&dev, 10_000), t); // no global cycles
    }

    #[test]
    fn comm_fraction() {
        let r = report(25.0, 75.0, 0.0);
        assert!((r.comm_fraction() - 0.25).abs() < 1e-12);
    }
}
