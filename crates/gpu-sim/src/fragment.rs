//! Warp-register matrix fragments.
//!
//! A fragment is a small matrix tile distributed across the 32 threads of
//! a warp and living entirely in registers — the WMMA/MMA fragment
//! abstraction of CUDA/HIP/SYCL (Table 4: `Register` / `fragment` /
//! `joint_matrix`). The simulator models a fragment at warp granularity:
//! one row-major value buffer plus the register cost it induces per thread.

use crate::precision::Precision;
use serde::{Deserialize, Serialize};

/// Identifier of a fragment within one warp's program.
pub type FragId = usize;

/// Static declaration of a fragment (shape + precision + debug name).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FragDecl {
    pub rows: usize,
    pub cols: usize,
    pub precision: Precision,
    /// Debug label, e.g. `"Ai"`, `"BRecv"` — matches the paper's notation.
    pub name: String,
}

impl FragDecl {
    pub fn new(name: impl Into<String>, rows: usize, cols: usize, precision: Precision) -> Self {
        FragDecl {
            rows,
            cols,
            precision,
            name: name.into(),
        }
    }

    /// Total bytes the fragment occupies across the warp.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.rows * self.cols * self.precision.size_bytes()
    }

    /// Architectural registers per thread this fragment consumes:
    /// bytes spread over `warp_size` threads, in `reg_width`-byte registers,
    /// rounded up (hardware allocates whole registers).
    pub fn regs_per_thread(&self, warp_size: u32, reg_width: u32) -> u32 {
        let per_thread_bytes = self.bytes().div_ceil(warp_size as usize);
        per_thread_bytes.div_ceil(reg_width as usize) as u32
    }

    #[inline]
    pub fn elems(&self) -> usize {
        self.rows * self.cols
    }
}

/// Runtime storage of a fragment's values (row-major, quantized on write).
#[derive(Debug, Clone)]
pub struct FragValue {
    pub decl: FragDecl,
    pub data: Vec<f64>,
    /// Whether the fragment has been written at least once. Reading an
    /// uninitialized fragment is a program bug the engine reports.
    pub initialized: bool,
}

impl FragValue {
    pub fn new(decl: FragDecl) -> Self {
        let n = decl.elems();
        FragValue {
            decl,
            data: vec![0.0; n],
            initialized: false,
        }
    }

    /// Overwrite contents with `src` (already shaped row-major), applying
    /// the fragment's precision quantization — registers hold the stored
    /// type, so every write narrows.
    pub fn store(&mut self, src: &[f64]) {
        debug_assert_eq!(src.len(), self.data.len());
        let p = self.decl.precision;
        for (dst, &s) in self.data.iter_mut().zip(src) {
            *dst = p.round(s);
        }
        self.initialized = true;
    }

    /// Zero-fill (accumulator initialisation).
    pub fn zero(&mut self) {
        self.data.fill(0.0);
        self.initialized = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_and_registers() {
        // 16x16 FP16 = 512 B over 32 threads = 16 B/thread = 4 registers.
        let d = FragDecl::new("Ai", 16, 16, Precision::Fp16);
        assert_eq!(d.bytes(), 512);
        assert_eq!(d.regs_per_thread(32, 4), 4);
        // 8x8 FP64 = 512 B -> same.
        let d = FragDecl::new("Ci", 8, 8, Precision::Fp64);
        assert_eq!(d.regs_per_thread(32, 4), 4);
        // Tiny fragment still costs one whole register.
        let d = FragDecl::new("t", 1, 1, Precision::Fp16);
        assert_eq!(d.regs_per_thread(32, 4), 1);
    }

    #[test]
    fn paper_register_example() {
        // §4.7: three 128×128 FP64 matrices over 8 warps (256 threads)
        // need 3·128·128·2 ÷ 256 = 384 regs/thread. Each warp holds 1/8 of
        // each matrix: 128·128/8 elements · 8 B = 16384 B -> 128 regs/thread
        // per matrix, 384 for three.
        let per_warp_elems = 128 * 128 / 8;
        let d = FragDecl::new("Ai", per_warp_elems, 1, Precision::Fp64);
        assert_eq!(d.regs_per_thread(32, 4) * 3, 384);
    }

    #[test]
    fn store_quantizes() {
        let mut f = FragValue::new(FragDecl::new("x", 1, 2, Precision::Fp16));
        assert!(!f.initialized);
        f.store(&[1.0, 1.0 + (2.0f64).powi(-13)]);
        assert!(f.initialized);
        assert_eq!(f.data, vec![1.0, 1.0]);
    }

    #[test]
    fn zero_initializes() {
        let mut f = FragValue::new(FragDecl::new("c", 2, 2, Precision::Fp32));
        f.zero();
        assert!(f.initialized);
        assert!(f.data.iter().all(|&x| x == 0.0));
    }
}
