//! # kami-gpu-sim
//!
//! Functional + cycle-accounted simulator of one GPU streaming
//! multiprocessor, built as the hardware substrate for the KAMI
//! communication-avoiding GEMM reproduction (SC '25).
//!
//! The simulator models exactly the resources KAMI's theory is stated
//! over (paper §3.2, §4, Table 2):
//!
//! * **warps** executing SPMD [`program::WarpProgram`]s with
//!   `__syncthreads()` barriers,
//! * **register files** holding matrix [`fragment`]s (with live-range
//!   analysis reproducing compiler register reuse),
//! * **banked shared memory** as the communication medium (latency
//!   `L_sm`, bandwidth `B_sm`, bank-conflict factors `θ_r`/`θ_w`),
//! * **tensor cores** with the vendor instruction shapes of Table 4 and
//!   true precision emulation (FP64/TF32/FP16/FP8-E4M3),
//! * **global memory** with HBM-class latency and per-SM bandwidth.
//!
//! Kernels execute *functionally* (values really move and tensor cores
//! really multiply at the requested precision) while every phase is
//! charged cycles under the paper's cost semantics, so an
//! [`report::ExecutionReport`] is simultaneously a correctness witness
//! and a performance measurement.
//!
//! ```
//! use kami_gpu_sim::{device, Engine, GlobalMemory, Matrix, Precision, BlockKernel};
//!
//! let dev = device::gh200();
//! let mut gmem = GlobalMemory::new();
//! let a = Matrix::seeded_uniform(16, 16, 1);
//! let b = Matrix::seeded_uniform(16, 16, 2);
//! let ab = gmem.upload("A", &a, Precision::Fp16);
//! let bb = gmem.upload("B", &b, Precision::Fp16);
//! let cb = gmem.alloc_zeroed("C", 16, 16, Precision::Fp32);
//!
//! let kernel = BlockKernel::spmd(1, |_, w| {
//!     let fa = w.frag("A", 16, 16, Precision::Fp16);
//!     let fb = w.frag("B", 16, 16, Precision::Fp16);
//!     let fc = w.frag("C", 16, 16, Precision::Fp32);
//!     w.global_load(fa, ab, 0, 0);
//!     w.global_load(fb, bb, 0, 0);
//!     w.zero_acc(fc);
//!     w.mma(fc, fa, fb);
//!     w.global_store(fc, cb, 0, 0);
//! });
//!
//! let report = Engine::new(&dev).run(&kernel, &mut gmem).unwrap();
//! assert!(report.cycles > 0.0);
//! ```

pub mod cost;
pub mod device;
pub mod engine;
pub mod error;
pub mod fragment;
pub mod matrix;
pub mod memory;
pub mod occupancy;
pub mod passes;
pub mod precision;
pub mod program;
pub mod report;
pub mod tensor_core;
pub mod trace;

pub use cost::{CostConfig, CostMode, PhaseCost};
pub use device::{DeviceSpec, Vendor};
pub use engine::Engine;
pub use error::SimError;
pub use fragment::{FragDecl, FragId};
pub use matrix::Matrix;
pub use memory::global::{BufferId, GlobalMemory, GmemLayout};
pub use memory::regfile::RegisterUsage;
pub use occupancy::{
    analyze as analyze_occupancy, analyze_on_chip as analyze_occupancy_on_chip,
    analyze_stream as analyze_occupancy_stream, Limiter, Occupancy, StreamSteady,
};
pub use passes::{
    BackendKind, ExecBackend, ExecOutcome, NativeBackend, PlannedKernel, RunArtifacts, RunOptions,
    SimBackend,
};
pub use precision::Precision;
pub use program::{gelu, BlockKernel, Op, UnaryFunc, WarpProgram};
pub use report::ExecutionReport;
pub use tensor_core::{native_shape, shape_for, MmaShape};
pub use trace::{Trace, TraceEvent, TraceKind};
