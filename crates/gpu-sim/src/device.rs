//! Device specifications for the four GPUs the paper evaluates (Table 3),
//! plus the on-chip latency/bandwidth parameters of Fig. 4(b) and the
//! derived per-tensor-core throughput `O_tc` used by Formulas 3/7/11.

use crate::precision::Precision;
use serde::{Deserialize, Serialize};

/// GPU vendor, used to select the native MMA instruction shape (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    Nvidia,
    Amd,
    Intel,
}

/// Static description of one GPU, at the granularity the KAMI cost model
/// needs: one streaming multiprocessor (SM / CU / Xe-core) with its warps,
/// register file, banked shared memory, and tensor cores, replicated
/// `num_sms` times.
///
/// All bandwidths are **bytes per clock cycle** and all latencies are
/// **clock cycles**, because KAMI's theoretical analysis (§4) is stated in
/// cycles rather than seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. "NVIDIA GH200".
    pub name: String,
    pub vendor: Vendor,
    /// Boost clock in MHz (Table 3).
    pub boost_clock_mhz: u64,
    /// Number of shared-memory banks (Table 3: 32 for NVIDIA/AMD, 16 Intel).
    pub smem_banks: u32,
    /// Width of one bank in bytes (4 on all four devices).
    pub smem_bank_width: u32,
    /// Streaming multiprocessors (SMs / CUs / Xe cores).
    pub num_sms: u32,
    /// Tensor cores (matrix units) per SM (`n_tc`).
    pub tensor_cores_per_sm: u32,
    /// Peak FP16 tensor throughput in TFLOPS (Table 3).
    pub peak_fp16_tflops: f64,
    /// Peak FP64 tensor throughput in TFLOPS; `None` where the device has
    /// no FP64 tensor path (5090, 7900 XTX, Max 1100).
    pub peak_fp64_tflops: Option<f64>,
    /// Register -> shared-memory access latency in cycles (`L_sm`).
    /// The paper's worked examples use 22 cycles.
    pub smem_latency: u64,
    /// Register access latency in cycles (Fig. 4(b): ~1).
    pub reg_latency: u64,
    /// Global-memory access latency in cycles.
    pub gmem_latency: u64,
    /// Global-memory bandwidth per SM in bytes/cycle.
    pub gmem_bytes_per_cycle: f64,
    /// Shared-memory capacity per SM in bytes.
    pub smem_capacity: usize,
    /// Architectural limit on registers per thread (255 on NVIDIA; we use
    /// the same bound for AMD/Intel whose VGPR budgets are similar).
    pub max_regs_per_thread: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Threads per warp / wavefront / sub-group.
    pub warp_size: u32,
    /// Register width in bytes (one architectural register lane).
    pub reg_width_bytes: u32,
    /// Architectural registers per SM (the whole register file).
    pub regs_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
}

impl DeviceSpec {
    /// Shared-memory bandwidth `B_sm` in bytes per cycle: all banks
    /// delivering one word per cycle (32 × 4 = 128 B/cycle on NVIDIA/AMD,
    /// 16 × 4 = 64 B/cycle on Intel Max 1100).
    #[inline]
    pub fn smem_bytes_per_cycle(&self) -> f64 {
        f64::from(self.smem_banks * self.smem_bank_width)
    }

    /// Clock frequency in Hz.
    #[inline]
    pub fn clock_hz(&self) -> f64 {
        self.boost_clock_mhz as f64 * 1e6
    }

    /// Peak tensor throughput in TFLOPS at `prec`, scaled from the FP16
    /// figure the way the vendors scale their tensor pipelines:
    /// TF32 = ½·FP16, FP8 = 2·FP16, FP64 from the dedicated column.
    pub fn peak_tflops(&self, prec: Precision) -> Option<f64> {
        match prec {
            Precision::Fp16 | Precision::Bf16 => Some(self.peak_fp16_tflops),
            Precision::Tf32 | Precision::Fp32 => Some(self.peak_fp16_tflops / 2.0),
            Precision::Fp8E4M3 => Some(self.peak_fp16_tflops * 2.0),
            Precision::Fp64 => self.peak_fp64_tflops,
        }
    }

    /// Arithmetic operations per cycle per tensor core (`O_tc`), derived
    /// from the Table 3 peak:
    /// `O_tc = peak_flops / (num_sms · tensor_cores_per_sm · clock)`.
    ///
    /// Returns `None` when the device has no tensor path at `prec`.
    pub fn ops_per_cycle_per_tc(&self, prec: Precision) -> Option<f64> {
        let peak = self.peak_tflops(prec)? * 1e12;
        let denom = f64::from(self.num_sms) * f64::from(self.tensor_cores_per_sm) * self.clock_hz();
        Some(peak / denom)
    }

    /// Total tensor throughput of one SM in ops/cycle.
    pub fn sm_ops_per_cycle(&self, prec: Precision) -> Option<f64> {
        self.ops_per_cycle_per_tc(prec)
            .map(|o| o * f64::from(self.tensor_cores_per_sm))
    }

    /// Maximum number of warps in one block.
    #[inline]
    pub fn max_warps_per_block(&self) -> u32 {
        self.max_threads_per_block / self.warp_size
    }

    /// Register budget per thread in bytes.
    #[inline]
    pub fn reg_bytes_per_thread(&self) -> usize {
        (self.max_regs_per_thread * self.reg_width_bytes) as usize
    }

    /// The four devices of Table 3 in the paper's column order.
    pub fn all_evaluated() -> [DeviceSpec; 4] {
        [gh200(), rtx5090(), amd_7900xtx(), intel_max1100()]
    }

    /// Serialize this spec as pretty JSON — the on-disk format for
    /// custom devices (see [`DeviceSpec::from_json`]).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("DeviceSpec serializes")
    }

    /// Load a spec from JSON, so users can model GPUs beyond the four
    /// Table 3 presets (e.g. `sweep --device-file mygpu.json`). Sanity
    /// checks reject zero clocks/banks/SMs.
    pub fn from_json(json: &str) -> Result<DeviceSpec, String> {
        let spec: DeviceSpec = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if spec.boost_clock_mhz == 0
            || spec.smem_banks == 0
            || spec.smem_bank_width == 0
            || spec.num_sms == 0
            || spec.tensor_cores_per_sm == 0
            || spec.warp_size == 0
            || spec.peak_fp16_tflops <= 0.0
        {
            return Err(format!(
                "device '{}' has a zero/negative resource",
                spec.name
            ));
        }
        Ok(spec)
    }
}

/// NVIDIA GH200 (Hopper, H100 SXM class): the paper's primary platform.
pub fn gh200() -> DeviceSpec {
    DeviceSpec {
        name: "NVIDIA GH200".into(),
        vendor: Vendor::Nvidia,
        boost_clock_mhz: 1980,
        smem_banks: 32,
        smem_bank_width: 4,
        num_sms: 132,
        tensor_cores_per_sm: 4,
        peak_fp16_tflops: 990.0,
        peak_fp64_tflops: Some(67.0),
        smem_latency: 22,
        reg_latency: 1,
        gmem_latency: 600,
        // ~4 TB/s HBM3 across 132 SMs at 1.98 GHz ≈ 15.3 B/cycle/SM.
        gmem_bytes_per_cycle: 15.3,
        smem_capacity: 228 * 1024,
        max_regs_per_thread: 255,
        max_threads_per_block: 1024,
        warp_size: 32,
        reg_width_bytes: 4,
        regs_per_sm: 65536,
        max_warps_per_sm: 64,
        max_blocks_per_sm: 32,
    }
}

/// NVIDIA RTX 5090 (Blackwell consumer).
pub fn rtx5090() -> DeviceSpec {
    DeviceSpec {
        name: "NVIDIA RTX 5090".into(),
        vendor: Vendor::Nvidia,
        boost_clock_mhz: 2655,
        smem_banks: 32,
        smem_bank_width: 4,
        num_sms: 170,
        tensor_cores_per_sm: 4,
        peak_fp16_tflops: 462.0,
        peak_fp64_tflops: None,
        smem_latency: 22,
        reg_latency: 1,
        gmem_latency: 650,
        // ~1.79 TB/s GDDR7 across 170 SMs at 2.655 GHz ≈ 4.0 B/cycle/SM.
        gmem_bytes_per_cycle: 4.0,
        smem_capacity: 128 * 1024,
        max_regs_per_thread: 255,
        max_threads_per_block: 1024,
        warp_size: 32,
        reg_width_bytes: 4,
        regs_per_sm: 65536,
        max_warps_per_sm: 48,
        max_blocks_per_sm: 24,
    }
}

/// AMD Radeon 7900 XTX (RDNA3, WMMA on 2 matrix units per CU pair).
pub fn amd_7900xtx() -> DeviceSpec {
    DeviceSpec {
        name: "AMD 7900 XTX".into(),
        vendor: Vendor::Amd,
        boost_clock_mhz: 2498,
        smem_banks: 32,
        smem_bank_width: 4,
        num_sms: 96,
        tensor_cores_per_sm: 2,
        peak_fp16_tflops: 123.0,
        peak_fp64_tflops: None,
        smem_latency: 25,
        reg_latency: 1,
        gmem_latency: 700,
        // ~0.96 TB/s across 96 CUs at 2.498 GHz ≈ 4.0 B/cycle/CU.
        gmem_bytes_per_cycle: 4.0,
        smem_capacity: 64 * 1024,
        max_regs_per_thread: 255,
        max_threads_per_block: 1024,
        warp_size: 32,
        reg_width_bytes: 4,
        regs_per_sm: 98304,
        max_warps_per_sm: 32,
        max_blocks_per_sm: 16,
    }
}

/// Intel Data Center GPU Max 1100 (Ponte Vecchio, XMX engines).
pub fn intel_max1100() -> DeviceSpec {
    DeviceSpec {
        name: "Intel Max 1100".into(),
        vendor: Vendor::Intel,
        boost_clock_mhz: 1550,
        smem_banks: 16,
        smem_bank_width: 4,
        num_sms: 448,
        tensor_cores_per_sm: 1,
        peak_fp16_tflops: 22.0,
        peak_fp64_tflops: None,
        smem_latency: 30,
        reg_latency: 1,
        gmem_latency: 750,
        // ~1.23 TB/s HBM2e across 448 vector engines at 1.55 GHz ≈ 1.8 B/cycle.
        gmem_bytes_per_cycle: 1.8,
        smem_capacity: 128 * 1024,
        max_regs_per_thread: 255,
        max_threads_per_block: 1024,
        warp_size: 32,
        reg_width_bytes: 4,
        regs_per_sm: 65536,
        max_warps_per_sm: 64,
        max_blocks_per_sm: 32,
    }
}

/// NVIDIA A100 (Ampere) — an extra preset beyond Table 3, for users
/// comparing against the previous data-center generation.
pub fn a100() -> DeviceSpec {
    DeviceSpec {
        name: "NVIDIA A100".into(),
        vendor: Vendor::Nvidia,
        boost_clock_mhz: 1410,
        smem_banks: 32,
        smem_bank_width: 4,
        num_sms: 108,
        tensor_cores_per_sm: 4,
        peak_fp16_tflops: 312.0,
        peak_fp64_tflops: Some(19.5),
        smem_latency: 23,
        reg_latency: 1,
        gmem_latency: 650,
        // ~2 TB/s HBM2e across 108 SMs at 1.41 GHz ≈ 13.1 B/cycle/SM.
        gmem_bytes_per_cycle: 13.1,
        smem_capacity: 164 * 1024,
        max_regs_per_thread: 255,
        max_threads_per_block: 1024,
        warp_size: 32,
        reg_width_bytes: 4,
        regs_per_sm: 65536,
        max_warps_per_sm: 64,
        max_blocks_per_sm: 32,
    }
}

/// AMD Instinct MI300X (CDNA3) — extra preset: the data-center AMD part
/// (the paper evaluates the consumer 7900 XTX).
pub fn mi300x() -> DeviceSpec {
    DeviceSpec {
        name: "AMD MI300X".into(),
        vendor: Vendor::Amd,
        boost_clock_mhz: 2100,
        smem_banks: 32,
        smem_bank_width: 4,
        num_sms: 304,
        tensor_cores_per_sm: 4,
        peak_fp16_tflops: 1307.0,
        peak_fp64_tflops: Some(163.4),
        smem_latency: 25,
        reg_latency: 1,
        gmem_latency: 700,
        // ~5.3 TB/s HBM3 across 304 CUs at 2.1 GHz ≈ 8.3 B/cycle/CU.
        gmem_bytes_per_cycle: 8.3,
        smem_capacity: 64 * 1024,
        max_regs_per_thread: 255,
        max_threads_per_block: 1024,
        warp_size: 32,
        reg_width_bytes: 4,
        regs_per_sm: 131072,
        max_warps_per_sm: 32,
        max_blocks_per_sm: 16,
    }
}

/// NVIDIA RTX 4090 (Ada consumer) — extra preset.
pub fn rtx4090() -> DeviceSpec {
    DeviceSpec {
        name: "NVIDIA RTX 4090".into(),
        vendor: Vendor::Nvidia,
        boost_clock_mhz: 2520,
        smem_banks: 32,
        smem_bank_width: 4,
        num_sms: 128,
        tensor_cores_per_sm: 4,
        peak_fp16_tflops: 330.0,
        peak_fp64_tflops: None,
        smem_latency: 22,
        reg_latency: 1,
        gmem_latency: 650,
        // ~1 TB/s GDDR6X across 128 SMs at 2.52 GHz ≈ 3.1 B/cycle/SM.
        gmem_bytes_per_cycle: 3.1,
        smem_capacity: 100 * 1024,
        max_regs_per_thread: 255,
        max_threads_per_block: 1024,
        warp_size: 32,
        reg_width_bytes: 4,
        regs_per_sm: 65536,
        max_warps_per_sm: 48,
        max_blocks_per_sm: 24,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values() {
        let d = gh200();
        assert_eq!(d.boost_clock_mhz, 1980);
        assert_eq!(d.num_sms, 132);
        assert_eq!(d.tensor_cores_per_sm, 4);
        assert_eq!(d.smem_bytes_per_cycle(), 128.0);
        let i = intel_max1100();
        assert_eq!(i.smem_bytes_per_cycle(), 64.0);
        assert_eq!(i.num_sms, 448);
        assert_eq!(i.tensor_cores_per_sm, 1);
    }

    #[test]
    fn otc_derivation_gh200_fp64() {
        // 67 TFLOPS / (132 SMs * 4 TCs * 1.98 GHz) ≈ 64 ops/cycle — the
        // same order as the paper's worked example (O_tc = 32 per FP64 TC
        // at half the dense-MMA issue rate; the derived figure bounds it).
        let o = gh200().ops_per_cycle_per_tc(Precision::Fp64).unwrap();
        assert!((o - 64.0).abs() < 1.0, "O_tc = {o}");
    }

    #[test]
    fn otc_derivation_gh200_fp16() {
        let o = gh200().ops_per_cycle_per_tc(Precision::Fp16).unwrap();
        assert!((o - 947.0).abs() < 5.0, "O_tc = {o}");
    }

    #[test]
    fn fp64_tensor_only_on_gh200() {
        assert!(gh200().peak_tflops(Precision::Fp64).is_some());
        assert!(rtx5090().peak_tflops(Precision::Fp64).is_none());
        assert!(amd_7900xtx().peak_tflops(Precision::Fp64).is_none());
        assert!(intel_max1100().peak_tflops(Precision::Fp64).is_none());
    }

    #[test]
    fn precision_scaling() {
        let d = rtx5090();
        assert_eq!(d.peak_tflops(Precision::Tf32), Some(231.0));
        assert_eq!(d.peak_tflops(Precision::Fp8E4M3), Some(924.0));
    }

    #[test]
    fn extra_presets_are_consistent() {
        for d in [a100(), mi300x(), rtx4090()] {
            assert!(d.ops_per_cycle_per_tc(Precision::Fp16).unwrap() > 0.0);
            assert!(d.smem_bytes_per_cycle() > 0.0);
            assert!(d.max_warps_per_block() >= 8);
            // JSON round trip holds for every preset.
            assert_eq!(DeviceSpec::from_json(&d.to_json()).unwrap(), d);
        }
        // A100's FP64 tensor path exists; 4090's does not.
        assert!(a100().peak_tflops(Precision::Fp64).is_some());
        assert!(rtx4090().peak_tflops(Precision::Fp64).is_none());
        assert!(mi300x().peak_tflops(Precision::Fp64).is_some());
    }

    #[test]
    fn json_roundtrip_and_validation() {
        let d = gh200();
        let j = d.to_json();
        let back = DeviceSpec::from_json(&j).unwrap();
        assert_eq!(back, d);
        // A custom device with different parameters parses too.
        let mut custom = rtx5090();
        custom.name = "Hypothetical 64-bank GPU".into();
        custom.smem_banks = 64;
        let back = DeviceSpec::from_json(&custom.to_json()).unwrap();
        assert_eq!(back.smem_bytes_per_cycle(), 256.0);
        // Broken specs rejected.
        let mut broken = gh200();
        broken.num_sms = 0;
        assert!(DeviceSpec::from_json(&broken.to_json()).is_err());
        assert!(DeviceSpec::from_json("not json").is_err());
    }

    #[test]
    fn warp_budget() {
        let d = gh200();
        assert_eq!(d.max_warps_per_block(), 32);
        assert_eq!(d.reg_bytes_per_thread(), 1020);
    }
}
