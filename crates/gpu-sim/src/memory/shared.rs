//! Banked on-chip shared memory — KAMI's "network".
//!
//! Values live at byte addresses with an element size recorded per write,
//! so a mismatched read (wrong precision or misaligned overlay) is caught
//! as a simulation error instead of silently reinterpreting bits. A store
//! that partially overlaps previously written data of a different extent
//! invalidates the stale cells, so the clobbered element reads back as
//! uninitialized instead of returning its old value.
//!
//! The module also provides the bank-conflict analysis behind the paper's
//! `θ_r` / `θ_w` factors: for a warp-wide access with a given element size
//! and stride, it computes how many bank cycles the access takes relative
//! to the conflict-free ideal.

use std::collections::HashMap;

/// Read or write, for conflict analysis and traffic split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

/// Layout summary of the live cells, used to skip overlap scans in the
/// common case where a block only ever stores one element size at
/// aligned addresses (every KAMI kernel today).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Layout {
    Empty,
    Uniform(usize),
    Mixed,
}

/// Shared-memory space of one thread block.
#[derive(Clone)]
pub struct SharedMemory {
    capacity: usize,
    /// byte address -> (value, element size that wrote it)
    cells: HashMap<usize, (f64, usize)>,
    layout: Layout,
    /// Largest element size ever stored — bounds the overlap scan window.
    max_elem: usize,
    bytes_read: u64,
    bytes_written: u64,
    peak_extent: usize,
}

impl SharedMemory {
    pub fn new(capacity: usize) -> Self {
        SharedMemory {
            capacity,
            cells: HashMap::new(),
            layout: Layout::Empty,
            max_elem: 0,
            bytes_read: 0,
            bytes_written: 0,
            peak_extent: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest byte address touched + 1 — the block's shared-memory
    /// footprint (what a launch would have to reserve).
    pub fn peak_extent(&self) -> usize {
        self.peak_extent
    }

    /// Store `values` contiguously at byte `addr` with elements of
    /// `elem_size` bytes. Returns `Err` description on capacity overflow.
    ///
    /// A store that partially overlaps an existing cell of a different
    /// start or extent invalidates that cell: cells are keyed by start
    /// address, so without invalidation an 8-byte store at byte 0
    /// followed by a 4-byte store at byte 4 would leave the stale wide
    /// value readable at byte 0.
    pub fn store(&mut self, addr: usize, elem_size: usize, values: &[f64]) -> Result<(), String> {
        self.store_cells(addr, elem_size, values.len(), Some(values))
    }

    /// Shape-only variant of [`Self::store`]: identical capacity check,
    /// overlap invalidation, counters, and layout bookkeeping, but cell
    /// values are placeholders. This is what the cost pass runs — it must
    /// see the exact same faults and footprint as a functional store
    /// without touching matrix data.
    pub fn store_shape(
        &mut self,
        addr: usize,
        elem_size: usize,
        count: usize,
    ) -> Result<(), String> {
        self.store_cells(addr, elem_size, count, None)
    }

    fn store_cells(
        &mut self,
        addr: usize,
        elem_size: usize,
        count: usize,
        values: Option<&[f64]>,
    ) -> Result<(), String> {
        let extent = addr + count * elem_size;
        if extent > self.capacity {
            return Err(format!(
                "shared memory overflow: extent {extent} B > capacity {} B",
                self.capacity
            ));
        }
        // Partial overlaps can only exist once element sizes mix or an
        // address breaks the uniform alignment grid; skip the per-byte
        // scan on the fast path.
        let aligned = elem_size > 0 && addr.is_multiple_of(elem_size);
        let uniform = aligned
            && match self.layout {
                Layout::Empty => true,
                Layout::Uniform(sz) => sz == elem_size,
                Layout::Mixed => false,
            };
        if !uniform {
            for i in 0..count {
                let a = addr + i * elem_size;
                let lo = a.saturating_sub(self.max_elem.saturating_sub(1));
                for s in lo..a + elem_size {
                    if s == a {
                        continue; // exact-start cell is replaced below
                    }
                    if let Some(&(_, esz)) = self.cells.get(&s) {
                        if s + esz > a {
                            self.cells.remove(&s);
                        }
                    }
                }
            }
        }
        for i in 0..count {
            let v = values.map_or(0.0, |vs| vs[i]);
            self.cells.insert(addr + i * elem_size, (v, elem_size));
        }
        self.layout = if uniform {
            Layout::Uniform(elem_size)
        } else {
            Layout::Mixed
        };
        self.max_elem = self.max_elem.max(elem_size);
        self.bytes_written += (count * elem_size) as u64;
        self.peak_extent = self.peak_extent.max(extent);
        Ok(())
    }

    /// Load `count` elements of `elem_size` bytes from byte `addr`.
    /// Errors on uninitialized cells or element-size mismatch.
    pub fn load(
        &mut self,
        addr: usize,
        elem_size: usize,
        count: usize,
    ) -> Result<Vec<f64>, String> {
        let mut out = Vec::with_capacity(count);
        self.load_cells(addr, elem_size, count, Some(&mut out))?;
        Ok(out)
    }

    /// Shape-only variant of [`Self::load`]: identical initialization and
    /// element-size checks and the same traffic counter, without
    /// producing values (the cost pass's read).
    pub fn load_shape(
        &mut self,
        addr: usize,
        elem_size: usize,
        count: usize,
    ) -> Result<(), String> {
        self.load_cells(addr, elem_size, count, None)
    }

    fn load_cells(
        &mut self,
        addr: usize,
        elem_size: usize,
        count: usize,
        mut out: Option<&mut Vec<f64>>,
    ) -> Result<(), String> {
        for i in 0..count {
            let a = addr + i * elem_size;
            match self.cells.get(&a) {
                Some(&(v, sz)) if sz == elem_size => {
                    if let Some(o) = out.as_deref_mut() {
                        o.push(v);
                    }
                }
                Some(&(_, sz)) => {
                    return Err(format!(
                        "shared memory element-size mismatch at byte {a}: \
                         written as {sz} B, read as {elem_size} B"
                    ))
                }
                None => return Err(format!("read of uninitialized shared memory at byte {a}")),
            }
        }
        self.bytes_read += (count * elem_size) as u64;
        Ok(())
    }

    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Clear contents and counters (new kernel on the same block).
    pub fn reset(&mut self) {
        self.cells.clear();
        self.layout = Layout::Empty;
        self.max_elem = 0;
        self.bytes_read = 0;
        self.bytes_written = 0;
        self.peak_extent = 0;
    }
}

/// Bank-conflict factor θ for a warp-wide access pattern: `warp_size`
/// lanes access elements of `elem_size` bytes separated by `stride_bytes`.
/// Returns the paper's θ ∈ (0, 1], where 1 means conflict-free.
///
/// Contiguous accesses (`stride == elem_size`) are conflict-free on all
/// four devices: sub-word elements coalesce within a bank word, and wide
/// elements are split into half-warp transactions by the hardware. For
/// strided patterns we use the textbook replay model: a bank conflict
/// occurs when two lanes address *different* `bank_width`-byte words in
/// the same bank, and the access replays once per extra word, so
/// `θ = 1 / max_bank(distinct words)`.
pub fn theta(
    warp_size: u32,
    banks: u32,
    bank_width: u32,
    elem_size: usize,
    stride_bytes: usize,
) -> f64 {
    if stride_bytes == elem_size {
        return 1.0;
    }
    let bw = bank_width as usize;
    let mut words_per_bank: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); banks as usize];
    for lane in 0..warp_size as usize {
        // An element wider than a bank word touches every word it spans,
        // not just the one holding its first byte — an 8 B element at a
        // 4 B bank width occupies two consecutive words, and each one
        // can replay against other lanes.
        let start = lane * stride_bytes;
        let first = start / bw;
        let last = (start + elem_size.max(1) - 1) / bw;
        for word in first..=last {
            words_per_bank[word % banks as usize].insert(word);
        }
    }
    let worst = words_per_bank
        .iter()
        .map(|s| s.len())
        .max()
        .unwrap_or(1)
        .max(1);
    1.0 / worst as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_roundtrip() {
        let mut sm = SharedMemory::new(1024);
        sm.store(64, 2, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(sm.load(64, 2, 3).unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(sm.bytes_written(), 6);
        assert_eq!(sm.bytes_read(), 6);
        assert_eq!(sm.peak_extent(), 70);
    }

    #[test]
    fn capacity_overflow_detected() {
        let mut sm = SharedMemory::new(16);
        assert!(sm.store(0, 8, &[0.0, 0.0]).is_ok());
        assert!(sm.store(8, 8, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn uninitialized_read_detected() {
        let mut sm = SharedMemory::new(1024);
        assert!(sm.load(0, 4, 1).is_err());
    }

    #[test]
    fn elem_size_mismatch_detected() {
        let mut sm = SharedMemory::new(1024);
        sm.store(0, 8, &[1.0]).unwrap();
        let err = sm.load(0, 4, 1).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn overwrite_is_allowed() {
        let mut sm = SharedMemory::new(1024);
        sm.store(0, 4, &[1.0]).unwrap();
        sm.store(0, 4, &[2.0]).unwrap();
        assert_eq!(sm.load(0, 4, 1).unwrap(), vec![2.0]);
    }

    #[test]
    fn reset_clears_everything() {
        let mut sm = SharedMemory::new(1024);
        sm.store(0, 4, &[1.0]).unwrap();
        sm.reset();
        assert!(sm.load(0, 4, 1).is_err());
        assert_eq!(sm.bytes_written(), 0);
        assert_eq!(sm.peak_extent(), 0);
    }

    #[test]
    fn shape_only_ops_match_functional_bookkeeping() {
        let mut full = SharedMemory::new(1024);
        let mut shape = SharedMemory::new(1024);
        full.store(0, 8, &[1.0, 2.0]).unwrap();
        shape.store_shape(0, 8, 2).unwrap();
        // Same overlap invalidation through the shape path.
        full.store(4, 4, &[3.0]).unwrap();
        shape.store_shape(4, 4, 1).unwrap();
        assert_eq!(
            full.load(0, 8, 1).unwrap_err(),
            shape.load_shape(0, 8, 1).unwrap_err()
        );
        full.load(4, 4, 1).unwrap();
        shape.load_shape(4, 4, 1).unwrap();
        assert_eq!(full.bytes_written(), shape.bytes_written());
        assert_eq!(full.bytes_read(), shape.bytes_read());
        assert_eq!(full.peak_extent(), shape.peak_extent());
        // Capacity overflow reports identically.
        assert_eq!(
            full.store(1020, 8, &[0.0]).unwrap_err(),
            shape.store_shape(1020, 8, 1).unwrap_err()
        );
    }

    #[test]
    fn contiguous_access_is_conflict_free() {
        // FP32 contiguous: classic conflict-free pattern.
        assert_eq!(theta(32, 32, 4, 4, 4), 1.0);
        // FP16 contiguous: two lanes per bank word but still one pass.
        assert_eq!(theta(32, 32, 4, 2, 2), 1.0);
        // FP64 contiguous: two words per element, no same-phase conflicts.
        assert_eq!(theta(32, 32, 4, 8, 8), 1.0);
    }

    #[test]
    fn wide_then_narrow_overlap_invalidates() {
        let mut sm = SharedMemory::new(1024);
        sm.store(0, 8, &[1.0]).unwrap();
        // Narrow store into the tail of the wide element: the stale
        // 8-byte cell at byte 0 must no longer be readable.
        sm.store(4, 4, &[2.0]).unwrap();
        let err = sm.load(0, 8, 1).unwrap_err();
        assert!(err.contains("uninitialized"), "{err}");
        assert_eq!(sm.load(4, 4, 1).unwrap(), vec![2.0]);
    }

    #[test]
    fn narrow_then_wide_overlap_invalidates() {
        let mut sm = SharedMemory::new(1024);
        sm.store(0, 4, &[1.0]).unwrap();
        sm.store(4, 4, &[2.0]).unwrap();
        // Wide store covering both narrow cells: the one at byte 4 is
        // not at the new start address and must be invalidated, not
        // left readable beside the new 8-byte value.
        sm.store(0, 8, &[3.0]).unwrap();
        let err = sm.load(4, 4, 1).unwrap_err();
        assert!(err.contains("uninitialized"), "{err}");
        assert_eq!(sm.load(0, 8, 1).unwrap(), vec![3.0]);
    }

    #[test]
    fn misaligned_same_size_overlap_invalidates() {
        let mut sm = SharedMemory::new(1024);
        sm.store(0, 4, &[1.0]).unwrap();
        sm.store(2, 4, &[2.0]).unwrap();
        let err = sm.load(0, 4, 1).unwrap_err();
        assert!(err.contains("uninitialized"), "{err}");
        assert_eq!(sm.load(2, 4, 1).unwrap(), vec![2.0]);
    }

    #[test]
    fn large_pow2_stride_conflicts() {
        // Stride of 128 B maps every lane to bank 0: worst case.
        let t = theta(32, 32, 4, 4, 128);
        assert!(t < 0.1, "theta = {t}");
        // Stride 8 B with 4 B elements: 2-way conflict.
        let t = theta(32, 32, 4, 4, 8);
        assert!((t - 0.5).abs() < 1e-9, "theta = {t}");
    }

    #[test]
    fn fp64_strided_theta_counts_every_word_touched() {
        // FP64 elements (8 B) at a 12 B stride on 32 banks × 4 B words:
        // lane l starts at byte 12l, so it touches words {3l, 3l+1}.
        // Over 32 lanes that is 64 distinct words, exactly 2 per bank,
        // so the replay count is 2 and θ = 1/2. Counting only each
        // element's starting word would see 32 words on 32 distinct
        // banks (gcd(3, 32) = 1) and wrongly report θ = 1.
        let t = theta(32, 32, 4, 8, 12);
        assert!((t - 0.5).abs() < 1e-9, "theta = {t}");
        // FP64 at 16 B stride: words {4l, 4l+1}, 4 words per touched
        // bank -> θ = 1/4 (the start-word model agrees here; the 12 B
        // pin above is the discriminating case).
        let t = theta(32, 32, 4, 8, 16);
        assert!((t - 0.25).abs() < 1e-9, "theta = {t}");
    }
}
