//! Banked on-chip shared memory — KAMI's "network".
//!
//! Values live at byte addresses with an element size recorded per write,
//! so a mismatched read (wrong precision or misaligned overlay) is caught
//! as a simulation error instead of silently reinterpreting bits.
//!
//! The module also provides the bank-conflict analysis behind the paper's
//! `θ_r` / `θ_w` factors: for a warp-wide access with a given element size
//! and stride, it computes how many bank cycles the access takes relative
//! to the conflict-free ideal.

use std::collections::HashMap;

/// Read or write, for conflict analysis and traffic split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

/// Shared-memory space of one thread block.
pub struct SharedMemory {
    capacity: usize,
    /// byte address -> (value, element size that wrote it)
    cells: HashMap<usize, (f64, usize)>,
    bytes_read: u64,
    bytes_written: u64,
    peak_extent: usize,
}

impl SharedMemory {
    pub fn new(capacity: usize) -> Self {
        SharedMemory {
            capacity,
            cells: HashMap::new(),
            bytes_read: 0,
            bytes_written: 0,
            peak_extent: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest byte address touched + 1 — the block's shared-memory
    /// footprint (what a launch would have to reserve).
    pub fn peak_extent(&self) -> usize {
        self.peak_extent
    }

    /// Store `values` contiguously at byte `addr` with elements of
    /// `elem_size` bytes. Returns `Err` description on capacity overflow.
    pub fn store(&mut self, addr: usize, elem_size: usize, values: &[f64]) -> Result<(), String> {
        let extent = addr + values.len() * elem_size;
        if extent > self.capacity {
            return Err(format!(
                "shared memory overflow: extent {extent} B > capacity {} B",
                self.capacity
            ));
        }
        for (i, &v) in values.iter().enumerate() {
            self.cells.insert(addr + i * elem_size, (v, elem_size));
        }
        self.bytes_written += (values.len() * elem_size) as u64;
        self.peak_extent = self.peak_extent.max(extent);
        Ok(())
    }

    /// Load `count` elements of `elem_size` bytes from byte `addr`.
    /// Errors on uninitialized cells or element-size mismatch.
    pub fn load(
        &mut self,
        addr: usize,
        elem_size: usize,
        count: usize,
    ) -> Result<Vec<f64>, String> {
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let a = addr + i * elem_size;
            match self.cells.get(&a) {
                Some(&(v, sz)) if sz == elem_size => out.push(v),
                Some(&(_, sz)) => {
                    return Err(format!(
                        "shared memory element-size mismatch at byte {a}: \
                         written as {sz} B, read as {elem_size} B"
                    ))
                }
                None => return Err(format!("read of uninitialized shared memory at byte {a}")),
            }
        }
        self.bytes_read += (count * elem_size) as u64;
        Ok(out)
    }

    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Clear contents and counters (new kernel on the same block).
    pub fn reset(&mut self) {
        self.cells.clear();
        self.bytes_read = 0;
        self.bytes_written = 0;
        self.peak_extent = 0;
    }
}

/// Bank-conflict factor θ for a warp-wide access pattern: `warp_size`
/// lanes access elements of `elem_size` bytes separated by `stride_bytes`.
/// Returns the paper's θ ∈ (0, 1], where 1 means conflict-free.
///
/// Contiguous accesses (`stride == elem_size`) are conflict-free on all
/// four devices: sub-word elements coalesce within a bank word, and wide
/// elements are split into half-warp transactions by the hardware. For
/// strided patterns we use the textbook replay model: a bank conflict
/// occurs when two lanes address *different* `bank_width`-byte words in
/// the same bank, and the access replays once per extra word, so
/// `θ = 1 / max_bank(distinct words)`.
pub fn theta(
    warp_size: u32,
    banks: u32,
    bank_width: u32,
    elem_size: usize,
    stride_bytes: usize,
) -> f64 {
    if stride_bytes == elem_size {
        return 1.0;
    }
    let bw = bank_width as usize;
    let mut words_per_bank: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); banks as usize];
    for lane in 0..warp_size as usize {
        let word = lane * stride_bytes / bw;
        words_per_bank[word % banks as usize].insert(word);
    }
    let worst = words_per_bank
        .iter()
        .map(|s| s.len())
        .max()
        .unwrap_or(1)
        .max(1);
    1.0 / worst as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_roundtrip() {
        let mut sm = SharedMemory::new(1024);
        sm.store(64, 2, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(sm.load(64, 2, 3).unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(sm.bytes_written(), 6);
        assert_eq!(sm.bytes_read(), 6);
        assert_eq!(sm.peak_extent(), 70);
    }

    #[test]
    fn capacity_overflow_detected() {
        let mut sm = SharedMemory::new(16);
        assert!(sm.store(0, 8, &[0.0, 0.0]).is_ok());
        assert!(sm.store(8, 8, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn uninitialized_read_detected() {
        let mut sm = SharedMemory::new(1024);
        assert!(sm.load(0, 4, 1).is_err());
    }

    #[test]
    fn elem_size_mismatch_detected() {
        let mut sm = SharedMemory::new(1024);
        sm.store(0, 8, &[1.0]).unwrap();
        let err = sm.load(0, 4, 1).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn overwrite_is_allowed() {
        let mut sm = SharedMemory::new(1024);
        sm.store(0, 4, &[1.0]).unwrap();
        sm.store(0, 4, &[2.0]).unwrap();
        assert_eq!(sm.load(0, 4, 1).unwrap(), vec![2.0]);
    }

    #[test]
    fn reset_clears_everything() {
        let mut sm = SharedMemory::new(1024);
        sm.store(0, 4, &[1.0]).unwrap();
        sm.reset();
        assert!(sm.load(0, 4, 1).is_err());
        assert_eq!(sm.bytes_written(), 0);
        assert_eq!(sm.peak_extent(), 0);
    }

    #[test]
    fn contiguous_access_is_conflict_free() {
        // FP32 contiguous: classic conflict-free pattern.
        assert_eq!(theta(32, 32, 4, 4, 4), 1.0);
        // FP16 contiguous: two lanes per bank word but still one pass.
        assert_eq!(theta(32, 32, 4, 2, 2), 1.0);
        // FP64 contiguous: two words per element, no same-phase conflicts.
        assert_eq!(theta(32, 32, 4, 8, 8), 1.0);
    }

    #[test]
    fn large_pow2_stride_conflicts() {
        // Stride of 128 B maps every lane to bank 0: worst case.
        let t = theta(32, 32, 4, 4, 128);
        assert!(t < 0.1, "theta = {t}");
        // Stride 8 B with 4 B elements: 2-way conflict.
        let t = theta(32, 32, 4, 4, 8);
        assert!((t - 0.5).abs() < 1e-9, "theta = {t}");
    }
}
