//! Simulated device memory hierarchy: global memory, banked shared
//! memory, and the per-warp register file (Fig. 4(b) of the paper).

pub mod global;
pub mod regfile;
pub mod shared;

pub use global::{BufferId, GlobalMemory};
pub use regfile::RegisterUsage;
pub use shared::{AccessKind, SharedMemory};
