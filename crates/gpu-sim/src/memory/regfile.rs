//! Register-file accounting with live-range analysis.
//!
//! The paper compares *theoretical* register demand (every fragment held
//! for the whole kernel) against *actual* compiler allocation, which is
//! lower "primarily attributable to compiler optimizations, such as
//! shortening variable lifetimes and optimizing register reuse" (§5.6.1,
//! Fig 14). We reproduce both sides:
//!
//! * theoretical = Σ fragment registers,
//! * measured    = peak over program points of the registers of *live*
//!   fragments (live = from first write to last use), i.e. what a linear-
//!   scan allocator with perfect reuse would need.

use crate::fragment::FragDecl;
use serde::{Deserialize, Serialize};

/// Register usage of one warp's program, per thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterUsage {
    /// Naive demand: all fragments resident simultaneously.
    pub theoretical_regs: u32,
    /// Peak live-set demand after lifetime-based reuse.
    pub measured_regs: u32,
}

impl RegisterUsage {
    /// Ratio measured/theoretical (the quantity Fig 14 reports, e.g.
    /// 76.86% for KAMI-1D).
    pub fn reuse_ratio(&self) -> f64 {
        if self.theoretical_regs == 0 {
            1.0
        } else {
            f64::from(self.measured_regs) / f64::from(self.theoretical_regs)
        }
    }
}

/// Live interval of a fragment in "op index" coordinates.
#[derive(Debug, Clone, Copy)]
pub struct LiveRange {
    pub first_def: usize,
    pub last_use: usize,
}

/// Compute [`RegisterUsage`] from fragment declarations and their live
/// ranges (`None` for fragments never touched — they cost nothing in the
/// measured count but do count theoretically, matching how source-level
/// declarations inflate the naive estimate).
pub fn analyze(
    frags: &[FragDecl],
    ranges: &[Option<LiveRange>],
    warp_size: u32,
    reg_width: u32,
    program_len: usize,
) -> RegisterUsage {
    assert_eq!(frags.len(), ranges.len());
    let theoretical: u32 = frags
        .iter()
        .map(|f| f.regs_per_thread(warp_size, reg_width))
        .sum();
    let mut measured = 0u32;
    for point in 0..program_len.max(1) {
        let live: u32 = frags
            .iter()
            .zip(ranges)
            .filter_map(|(f, r)| {
                r.and_then(|r| {
                    (r.first_def <= point && point <= r.last_use)
                        .then(|| f.regs_per_thread(warp_size, reg_width))
                })
            })
            .sum();
        measured = measured.max(live);
    }
    RegisterUsage {
        theoretical_regs: theoretical,
        measured_regs: measured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::Precision;

    fn frag(n: usize) -> FragDecl {
        // n x 32 FP32 = n registers per thread.
        FragDecl::new("f", n, 32, Precision::Fp32)
    }

    #[test]
    fn disjoint_lifetimes_reuse_registers() {
        let frags = vec![frag(4), frag(4)];
        let ranges = vec![
            Some(LiveRange {
                first_def: 0,
                last_use: 2,
            }),
            Some(LiveRange {
                first_def: 3,
                last_use: 5,
            }),
        ];
        let u = analyze(&frags, &ranges, 32, 4, 6);
        assert_eq!(u.theoretical_regs, 8);
        assert_eq!(u.measured_regs, 4);
        assert!((u.reuse_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlapping_lifetimes_add_up() {
        let frags = vec![frag(4), frag(2)];
        let ranges = vec![
            Some(LiveRange {
                first_def: 0,
                last_use: 5,
            }),
            Some(LiveRange {
                first_def: 3,
                last_use: 4,
            }),
        ];
        let u = analyze(&frags, &ranges, 32, 4, 6);
        assert_eq!(u.measured_regs, 6);
    }

    #[test]
    fn untouched_fragment_counts_only_theoretically() {
        let frags = vec![frag(4), frag(4)];
        let ranges = vec![
            Some(LiveRange {
                first_def: 0,
                last_use: 1,
            }),
            None,
        ];
        let u = analyze(&frags, &ranges, 32, 4, 2);
        assert_eq!(u.theoretical_regs, 8);
        assert_eq!(u.measured_regs, 4);
    }

    #[test]
    fn empty_program() {
        let u = analyze(&[], &[], 32, 4, 0);
        assert_eq!(u.theoretical_regs, 0);
        assert_eq!(u.measured_regs, 0);
        assert_eq!(u.reuse_ratio(), 1.0);
    }
}
