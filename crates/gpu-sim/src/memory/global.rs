//! Simulated global (HBM/GDDR) memory: named matrix buffers plus byte
//! traffic accounting.
//!
//! KAMI touches global memory only at kernel head and tail (matrices move
//! to registers once, results move back once); the cuBLAS-style baselines
//! stream through it per tile. Both patterns are charged through the byte
//! counters kept here.

use crate::matrix::Matrix;
use crate::precision::Precision;

/// Handle to a buffer in [`GlobalMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub(crate) usize);

struct Buffer {
    data: Matrix,
    precision: Precision,
    name: String,
}

#[derive(Debug, Clone)]
struct BufferMeta {
    name: String,
    rows: usize,
    cols: usize,
    precision: Precision,
}

/// Shape/precision metadata of a set of global buffers, with no values
/// attached — everything the cost pass needs to charge global traffic
/// and check window bounds. Declaring buffers here in the same order
/// they would be uploaded yields the same [`BufferId`]s, so a kernel
/// built against a `GmemLayout` runs unchanged against the real
/// [`GlobalMemory`].
#[derive(Debug, Clone, Default)]
pub struct GmemLayout {
    buffers: Vec<BufferMeta>,
}

impl GmemLayout {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a buffer shape; returns the id an `upload`/`alloc_zeroed`
    /// at the same position would return.
    pub fn declare(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        precision: Precision,
    ) -> BufferId {
        let id = BufferId(self.buffers.len());
        self.buffers.push(BufferMeta {
            name: name.into(),
            rows,
            cols,
            precision,
        });
        id
    }

    pub fn precision(&self, id: BufferId) -> Precision {
        self.buffers[id.0].precision
    }

    pub fn name(&self, id: BufferId) -> &str {
        &self.buffers[id.0].name
    }

    pub fn shape(&self, id: BufferId) -> (usize, usize) {
        let b = &self.buffers[id.0];
        (b.rows, b.cols)
    }

    /// Bounds-check a read window exactly as
    /// [`GlobalMemory::read_window`] would.
    pub(crate) fn check_read(
        &self,
        id: BufferId,
        row0: usize,
        col0: usize,
        rows: usize,
        cols: usize,
    ) {
        let b = &self.buffers[id.0];
        assert!(
            row0 + rows <= b.rows && col0 + cols <= b.cols,
            "global read out of bounds on '{}': ({row0},{col0})+{rows}x{cols} of {}x{}",
            b.name,
            b.rows,
            b.cols
        );
    }

    /// Bounds-check a write window exactly as
    /// [`GlobalMemory::write_window`] would.
    pub(crate) fn check_write(
        &self,
        id: BufferId,
        row0: usize,
        col0: usize,
        rows: usize,
        cols: usize,
    ) {
        let b = &self.buffers[id.0];
        assert!(
            row0 + rows <= b.rows && col0 + cols <= b.cols,
            "global write out of bounds on '{}'",
            b.name
        );
    }
}

/// Global-memory space of one simulated kernel launch.
#[derive(Default)]
pub struct GlobalMemory {
    buffers: Vec<Buffer>,
    bytes_read: u64,
    bytes_written: u64,
}

impl GlobalMemory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Upload a host matrix; values are quantized to `precision` exactly
    /// as a host-to-device copy of a typed buffer would.
    pub fn upload(
        &mut self,
        name: impl Into<String>,
        m: &Matrix,
        precision: Precision,
    ) -> BufferId {
        let id = BufferId(self.buffers.len());
        self.buffers.push(Buffer {
            data: m.quantized(precision),
            precision,
            name: name.into(),
        });
        id
    }

    /// Allocate a zero-initialized buffer (e.g. for the C output).
    pub fn alloc_zeroed(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        precision: Precision,
    ) -> BufferId {
        let id = BufferId(self.buffers.len());
        self.buffers.push(Buffer {
            data: Matrix::zeros(rows, cols),
            precision,
            name: name.into(),
        });
        id
    }

    /// Download a buffer back to the host.
    pub fn download(&self, id: BufferId) -> Matrix {
        self.buffers[id.0].data.clone()
    }

    pub fn precision(&self, id: BufferId) -> Precision {
        self.buffers[id.0].precision
    }

    pub fn name(&self, id: BufferId) -> &str {
        &self.buffers[id.0].name
    }

    pub fn shape(&self, id: BufferId) -> (usize, usize) {
        let b = &self.buffers[id.0];
        (b.data.rows(), b.data.cols())
    }

    /// Read a window; counts traffic. Returns row-major values.
    pub fn read_window(
        &mut self,
        id: BufferId,
        row0: usize,
        col0: usize,
        rows: usize,
        cols: usize,
    ) -> Vec<f64> {
        let out = self.read_window_pure(id, row0, col0, rows, cols);
        self.bytes_read += (rows * cols * self.buffers[id.0].precision.size_bytes()) as u64;
        out
    }

    /// Read a window without counting traffic — the parallel executor's
    /// snapshot read (each warp reads through `&self`, byte counts are
    /// settled per warp afterwards via [`Self::note_read_bytes`]).
    pub(crate) fn read_window_pure(
        &self,
        id: BufferId,
        row0: usize,
        col0: usize,
        rows: usize,
        cols: usize,
    ) -> Vec<f64> {
        let b = &self.buffers[id.0];
        assert!(
            row0 + rows <= b.data.rows() && col0 + cols <= b.data.cols(),
            "global read out of bounds on '{}': ({row0},{col0})+{rows}x{cols} of {}x{}",
            b.name,
            b.data.rows(),
            b.data.cols()
        );
        let mut out = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                out.push(b.data.get(row0 + r, col0 + c));
            }
        }
        out
    }

    /// Bounds-check a write window without performing it (the parallel
    /// executor defers writes but must fault at the op, like the
    /// interleaved engine).
    pub(crate) fn check_write(
        &self,
        id: BufferId,
        row0: usize,
        col0: usize,
        rows: usize,
        cols: usize,
    ) {
        let b = &self.buffers[id.0];
        assert!(
            row0 + rows <= b.data.rows() && col0 + cols <= b.data.cols(),
            "global write out of bounds on '{}'",
            b.name
        );
    }

    /// Charge read traffic measured outside [`Self::read_window`].
    pub(crate) fn note_read_bytes(&mut self, bytes: u64) {
        self.bytes_read += bytes;
    }

    pub(crate) fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// Snapshot the buffer shapes/precisions as a [`GmemLayout`] (the
    /// cost pass's view of this memory).
    pub fn layout(&self) -> GmemLayout {
        GmemLayout {
            buffers: self
                .buffers
                .iter()
                .map(|b| BufferMeta {
                    name: b.name.clone(),
                    rows: b.data.rows(),
                    cols: b.data.cols(),
                    precision: b.precision,
                })
                .collect(),
        }
    }

    /// Write (or accumulate into) a window; counts traffic and quantizes
    /// to the buffer's precision.
    #[allow(clippy::too_many_arguments)]
    pub fn write_window(
        &mut self,
        id: BufferId,
        row0: usize,
        col0: usize,
        rows: usize,
        cols: usize,
        values: &[f64],
        accumulate: bool,
    ) {
        assert_eq!(values.len(), rows * cols);
        let prec = self.buffers[id.0].precision;
        let b = &mut self.buffers[id.0];
        assert!(
            row0 + rows <= b.data.rows() && col0 + cols <= b.data.cols(),
            "global write out of bounds on '{}'",
            b.name
        );
        self.bytes_written += (rows * cols * prec.size_bytes()) as u64;
        if accumulate {
            // Read-modify-write also reads.
            self.bytes_read += (rows * cols * prec.size_bytes()) as u64;
        }
        for r in 0..rows {
            for c in 0..cols {
                let v = values[r * cols + c];
                let cur = b.data.get(row0 + r, col0 + c);
                let new = if accumulate {
                    prec.round(cur + v)
                } else {
                    prec.round(v)
                };
                b.data.set(row0 + r, col0 + c, new);
            }
        }
    }

    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Reset traffic counters (e.g. between timed repetitions).
    pub fn reset_traffic(&mut self) {
        self.bytes_read = 0;
        self.bytes_written = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_download_roundtrip() {
        let mut gm = GlobalMemory::new();
        let m = Matrix::seeded_uniform(4, 4, 1);
        let id = gm.upload("A", &m, Precision::Fp64);
        assert_eq!(gm.download(id), m);
        assert_eq!(gm.name(id), "A");
        assert_eq!(gm.shape(id), (4, 4));
    }

    #[test]
    fn upload_quantizes() {
        let mut gm = GlobalMemory::new();
        let m = Matrix::from_vec(1, 1, vec![1.0 + (2.0f64).powi(-13)]);
        let id = gm.upload("A", &m, Precision::Fp16);
        assert_eq!(gm.download(id)[(0, 0)], 1.0);
    }

    #[test]
    fn traffic_accounting() {
        let mut gm = GlobalMemory::new();
        let m = Matrix::zeros(8, 8);
        let id = gm.upload("A", &m, Precision::Fp16);
        gm.read_window(id, 0, 0, 4, 4);
        assert_eq!(gm.bytes_read(), 4 * 4 * 2);
        gm.write_window(id, 0, 0, 2, 2, &[1.0; 4], false);
        assert_eq!(gm.bytes_written(), 2 * 2 * 2);
        gm.reset_traffic();
        assert_eq!(gm.bytes_read(), 0);
    }

    #[test]
    fn accumulate_adds_and_counts_rmw() {
        let mut gm = GlobalMemory::new();
        let id = gm.alloc_zeroed("C", 2, 2, Precision::Fp64);
        gm.write_window(id, 0, 0, 2, 2, &[1.0; 4], false);
        gm.write_window(id, 0, 0, 2, 2, &[2.0; 4], true);
        assert_eq!(gm.download(id)[(1, 1)], 3.0);
        // Second write also read 32 bytes for the RMW.
        assert_eq!(gm.bytes_read(), 32);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_out_of_bounds_panics() {
        let mut gm = GlobalMemory::new();
        let id = gm.upload("A", &Matrix::zeros(2, 2), Precision::Fp64);
        gm.read_window(id, 1, 1, 2, 2);
    }
}
