//! Simulation errors: every way a block kernel can be malformed or exceed
//! the device's resources.

use std::fmt;

/// Error produced while validating or executing a block kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The block has no warps or more warps than the device allows.
    BadWarpCount { warps: usize, max: usize },
    /// Warps disagree on the number of barriers — deadlock on hardware.
    BarrierMismatch {
        warp: usize,
        phases: usize,
        expected: usize,
    },
    /// A fragment was read before any write.
    UninitializedFragment { warp: usize, frag: String },
    /// MMA operand shapes are incompatible.
    ShapeMismatch { detail: String },
    /// Fragment ids out of range or slice out of fragment bounds.
    BadOperand { detail: String },
    /// Shared-memory footprint exceeds the SM's capacity.
    SharedMemoryOverflow { detail: String },
    /// Shared-memory misuse (uninitialized read, element-size mismatch).
    SharedMemoryFault { warp: usize, detail: String },
    /// A same-phase cross-warp read/write overlap on shared memory —
    /// a data race that `__syncthreads()` should have separated.
    SharedMemoryHazard { detail: String },
    /// Register demand exceeds the per-thread architectural limit.
    RegisterOverflow {
        warp: usize,
        needed: u32,
        limit: u32,
    },
    /// The device has no tensor path at the requested precision.
    UnsupportedPrecision { device: String, precision: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadWarpCount { warps, max } => {
                write!(f, "bad warp count {warps} (device max {max})")
            }
            SimError::BarrierMismatch {
                warp,
                phases,
                expected,
            } => write!(
                f,
                "warp {warp} reaches {phases} phases but the block expects {expected} \
                 (unbalanced __syncthreads would deadlock)"
            ),
            SimError::UninitializedFragment { warp, frag } => {
                write!(f, "warp {warp} reads uninitialized fragment '{frag}'")
            }
            SimError::ShapeMismatch { detail } => write!(f, "MMA shape mismatch: {detail}"),
            SimError::BadOperand { detail } => write!(f, "bad operand: {detail}"),
            SimError::SharedMemoryOverflow { detail } => {
                write!(f, "shared memory overflow: {detail}")
            }
            SimError::SharedMemoryFault { warp, detail } => {
                write!(f, "shared memory fault in warp {warp}: {detail}")
            }
            SimError::SharedMemoryHazard { detail } => {
                write!(f, "shared memory race: {detail}")
            }
            SimError::RegisterOverflow {
                warp,
                needed,
                limit,
            } => write!(
                f,
                "warp {warp} needs {needed} registers/thread, limit is {limit} \
                 (use k-slicing to spill to shared memory, §4.7)"
            ),
            SimError::UnsupportedPrecision { device, precision } => {
                write!(f, "{device} has no tensor path for {precision}")
            }
        }
    }
}

impl std::error::Error for SimError {}
