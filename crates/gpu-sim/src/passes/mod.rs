//! The three-pass pipeline over a built [`BlockKernel`]:
//!
//! 1. **plan** ([`Engine::plan`]) — static validation (warp count,
//!    barrier alignment, register budget) plus the per-warp per-phase op
//!    index ranges every later pass walks. No memory state, no cycles.
//! 2. **cost** ([`Engine::cost`] / [`Engine::cost_traced`], in
//!    [`cost`]) — pure cycle accounting over the planned structure and a
//!    [`GmemLayout`](crate::memory::global::GmemLayout): it reproduces
//!    the legacy engine's [`ExecutionReport`] and [`Trace`] exactly,
//!    including every simulation fault, without touching matrix data.
//! 3. **execute** ([`Engine::execute_with`], in [`backend`]) — numerics
//!    only, behind the [`ExecBackend`] seam: the reference
//!    [`SimBackend`] (rayon-parallel with a serial
//!    interleaved fallback) or the host-speed
//!    [`NativeBackend`], both bit-identical to
//!    the legacy engine including accumulation order.
//!
//! [`Engine::run_kernel`] chains the three under a [`RunOptions`]
//! (trace flag, cost override, backend); [`Engine::run`] remains the
//! legacy interleaved loop the pipeline is differentially checked
//! against.

pub mod backend;
pub mod cost;
pub mod exec;
pub mod native;

pub use backend::{BackendKind, ExecBackend, ExecOutcome};
pub use exec::SimBackend;
pub use native::NativeBackend;

use crate::cost::CostConfig;
use crate::engine::Engine;
use crate::error::SimError;
use crate::memory::global::GlobalMemory;
use crate::memory::regfile::RegisterUsage;
use crate::program::{BlockKernel, Op};
use crate::report::ExecutionReport;
use crate::trace::Trace;

/// A validated kernel plus the phase structure shared by the cost and
/// execute passes. Producing one proves the kernel passes every static
/// check the legacy engine front-loads (and in the same order).
#[derive(Debug, Clone)]
pub struct PlannedKernel<'k> {
    pub kernel: &'k BlockKernel,
    /// Warps in the block.
    pub warps: usize,
    /// Barrier-delimited phases (barriers + 1, uniform across warps).
    pub phases: usize,
    /// Conservative per-warp register usage (the feasibility check).
    pub registers_per_warp: Vec<RegisterUsage>,
    /// `phase_ops[w][ph]` = op index range of warp `w` in phase `ph`,
    /// excluding the closing barrier.
    pub(crate) phase_ops: Vec<Vec<(usize, usize)>>,
}

impl<'k> PlannedKernel<'k> {
    /// Ops of warp `w` in phase `ph`.
    pub(crate) fn ops(&self, w: usize, ph: usize) -> &'k [Op] {
        let (start, end) = self.phase_ops[w][ph];
        &self.kernel.warps[w].ops[start..end]
    }
}

impl<'a> Engine<'a> {
    /// Plan pass: static validation and phase structure. Runs exactly
    /// the checks the legacy engine front-loads, in the same order
    /// (warp count, barrier alignment, register budget), so a kernel
    /// rejected here fails [`Engine::run`] with the same error.
    pub fn plan<'k>(&self, kernel: &'k BlockKernel) -> Result<PlannedKernel<'k>, SimError> {
        let p = kernel.num_warps();
        let max_warps = self.device.max_warps_per_block() as usize;
        if p == 0 || p > max_warps {
            return Err(SimError::BadWarpCount {
                warps: p,
                max: max_warps,
            });
        }

        let expected_phases = kernel.warps[0].barrier_count() + 1;
        for (i, w) in kernel.warps.iter().enumerate() {
            let phases = w.barrier_count() + 1;
            if phases != expected_phases {
                return Err(SimError::BarrierMismatch {
                    warp: i,
                    phases,
                    expected: expected_phases,
                });
            }
        }

        let registers_per_warp = self.analyze_registers(kernel);
        for (i, usage) in registers_per_warp.iter().enumerate() {
            if usage.measured_regs > self.device.max_regs_per_thread {
                return Err(SimError::RegisterOverflow {
                    warp: i,
                    needed: usage.measured_regs,
                    limit: self.device.max_regs_per_thread,
                });
            }
        }

        let phase_ops = kernel
            .warps
            .iter()
            .map(|w| {
                let mut ranges = Vec::with_capacity(expected_phases);
                let mut start = 0usize;
                for (idx, op) in w.ops.iter().enumerate() {
                    if matches!(op, Op::Barrier) {
                        ranges.push((start, idx));
                        start = idx + 1;
                    }
                }
                ranges.push((start, w.ops.len()));
                ranges
            })
            .collect();

        Ok(PlannedKernel {
            kernel,
            warps: p,
            phases: expected_phases,
            registers_per_warp,
            phase_ops,
        })
    }

    /// The full pipeline in one call: plan → cost → execute, equivalent
    /// to [`Engine::run`] (bit-identical numerics and report) with the
    /// passes separable and the execute pass behind the selected
    /// [`ExecBackend`].
    pub fn run_kernel(
        &self,
        kernel: &BlockKernel,
        gmem: &mut GlobalMemory,
        opts: &RunOptions,
    ) -> Result<RunArtifacts, SimError> {
        let eng = match &opts.cost {
            Some(cost) => Engine {
                device: self.device,
                cost: cost.clone(),
            },
            None => Engine {
                device: self.device,
                cost: self.cost.clone(),
            },
        };
        let plan = eng.plan(kernel)?;
        let layout = gmem.layout();
        let (report, trace) = if opts.traced {
            let (report, trace) = eng.cost_traced(&plan, &layout)?;
            (report, Some(trace))
        } else {
            (eng.cost(&plan, &layout)?, None)
        };
        let exec = eng.execute_with(opts.backend, &plan, gmem)?;
        Ok(RunArtifacts {
            report,
            trace,
            exec,
        })
    }

    /// Pre-`RunOptions` form of [`Self::run_kernel`]: default options,
    /// report only.
    #[doc(hidden)]
    pub fn run_passes(
        &self,
        kernel: &BlockKernel,
        gmem: &mut GlobalMemory,
    ) -> Result<ExecutionReport, SimError> {
        self.run_kernel(kernel, gmem, &RunOptions::default())
            .map(|a| a.report)
    }

    /// Pre-`RunOptions` form of [`Self::run_kernel`] with tracing on.
    #[doc(hidden)]
    pub fn run_passes_traced(
        &self,
        kernel: &BlockKernel,
        gmem: &mut GlobalMemory,
    ) -> Result<(ExecutionReport, Trace), SimError> {
        let arts = self.run_kernel(kernel, gmem, &RunOptions::default().traced())?;
        let trace = arts.trace.expect("traced run always carries a trace");
        Ok((arts.report, trace))
    }
}

/// Options of one [`Engine::run_kernel`] call — the single entry point
/// that superseded the `run_passes`/`run_passes_traced` pair.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Produce the cost pass's [`Trace`] alongside the report.
    pub traced: bool,
    /// Override the engine's [`CostConfig`] for this run (`None` keeps
    /// the engine's own).
    pub cost: Option<CostConfig>,
    /// Execution backend for the execute pass.
    pub backend: BackendKind,
}

impl RunOptions {
    /// Enable trace capture.
    pub fn traced(mut self) -> Self {
        self.traced = true;
        self
    }

    /// Override the cost-model parameters for this run.
    pub fn with_cost(mut self, cost: CostConfig) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Select the execution backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }
}

/// What one [`Engine::run_kernel`] call produced.
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// The cost pass's cycle/traffic/register report.
    pub report: ExecutionReport,
    /// The cost pass's timeline, when [`RunOptions::traced`] was set.
    pub trace: Option<Trace>,
    /// Which backend executed and how its phases split.
    pub exec: ExecOutcome,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::gh200;
    use crate::precision::Precision;

    #[test]
    fn plan_splits_phases_at_barriers() {
        let dev = gh200();
        let k = BlockKernel::spmd(2, |i, w| {
            let f = w.frag("x", 4, 4, Precision::Fp16);
            w.zero_acc(f);
            if i == 0 {
                w.shared_store(f, 0);
            }
            w.barrier();
            if i == 1 {
                w.shared_load(f, 0);
            }
        });
        let plan = Engine::new(&dev).plan(&k).unwrap();
        assert_eq!(plan.warps, 2);
        assert_eq!(plan.phases, 2);
        // Warp 0: [zero, store] then []; warp 1: [zero] then [load].
        assert_eq!(plan.ops(0, 0).len(), 2);
        assert_eq!(plan.ops(0, 1).len(), 0);
        assert_eq!(plan.ops(1, 0).len(), 1);
        assert_eq!(plan.ops(1, 1).len(), 1);
        assert!(!plan
            .ops(0, 0)
            .iter()
            .chain(plan.ops(1, 1))
            .any(|o| matches!(o, Op::Barrier)));
    }

    #[test]
    fn plan_rejects_what_the_legacy_engine_rejects() {
        let dev = gh200();
        let eng = Engine::new(&dev);
        // Barrier mismatch.
        let k = BlockKernel::spmd(2, |i, w| {
            let f = w.frag("x", 1, 1, Precision::Fp32);
            w.zero_acc(f);
            if i == 0 {
                w.barrier();
            }
        });
        let planned = eng.plan(&k).map(|_| ());
        let legacy = eng.run(&k, &mut GlobalMemory::new()).map(|_| ());
        assert_eq!(planned, legacy);
        // Register overflow.
        let k = BlockKernel::spmd(1, |_, w| {
            let f = w.frag("huge", 256, 128, Precision::Fp64);
            w.zero_acc(f);
        });
        let planned = eng.plan(&k).map(|_| ());
        let legacy = eng.run(&k, &mut GlobalMemory::new()).map(|_| ());
        assert_eq!(planned, legacy);
        // Empty block.
        let k = BlockKernel::new(Vec::new());
        assert_eq!(
            eng.plan(&k).map(|_| ()),
            eng.run(&k, &mut GlobalMemory::new()).map(|_| ())
        );
    }
}
