//! Cost pass: cycle accounting with no matrix data.
//!
//! Walks the planned phase structure in exactly the order the legacy
//! interleaved engine does — phases outermost, warps in order, ops in
//! program order — charging the same tallies (banked shared-memory
//! traffic with overlap invalidation, per-precision tensor-core flops
//! with the busiest-warp term, global bytes from buffer metadata,
//! register copies) through the same [`phase_cost`] bracketing of
//! Formulas 1–12. Every legality check the functional engine performs on
//! the way (uninitialized fragments, shape mismatches, capacity
//! overflows, same-phase races) is replayed on static structure, so the
//! pass returns the identical [`SimError`] at the identical point, and
//! on success the identical [`ExecutionReport`] and [`Trace`].
//!
//! The only inputs are the plan and a [`GmemLayout`] — buffer shapes and
//! precisions. "No numeric work" is structural: there is no value array
//! anywhere in this pass to read.
//!
//! [`CostConfig`](crate::cost::CostConfig) fault injection (θ overrides,
//! MMA efficiency, Serial/Overlap bracketing) therefore acts here and
//! only here: the execute pass never consults the cost model.

use super::PlannedKernel;
use crate::cost::{phase_cost, PhaseCost, PhaseTally};
use crate::engine::{describe_op, detect_races, frag_decl, Engine};
use crate::error::SimError;
use crate::memory::global::GmemLayout;
use crate::memory::shared::SharedMemory;
use crate::program::{Op, WarpProgram};
use crate::report::ExecutionReport;
use crate::tensor_core::shape_for;
use crate::trace::{Trace, TraceKind};

/// Fragment-initialization flags of one warp — the cost pass's entire
/// "register file".
type InitFlags = Vec<bool>;

fn require_init_flag(
    init: &InitFlags,
    id: usize,
    warp: usize,
    prog: &WarpProgram,
) -> Result<(), SimError> {
    if id >= init.len() {
        return Err(SimError::BadOperand {
            detail: format!("fragment id {id} out of range"),
        });
    }
    if !init[id] {
        return Err(SimError::UninitializedFragment {
            warp,
            frag: prog.frags[id].name.clone(),
        });
    }
    Ok(())
}

impl<'a> Engine<'a> {
    /// Cost pass: the [`ExecutionReport`] of running `plan` against
    /// buffers shaped like `layout`, with zero numeric work.
    pub fn cost(
        &self,
        plan: &PlannedKernel<'_>,
        layout: &GmemLayout,
    ) -> Result<ExecutionReport, SimError> {
        self.cost_inner(plan, layout, None)
    }

    /// Like [`Self::cost`], additionally producing the per-op [`Trace`].
    pub fn cost_traced(
        &self,
        plan: &PlannedKernel<'_>,
        layout: &GmemLayout,
    ) -> Result<(ExecutionReport, Trace), SimError> {
        let mut trace = Trace {
            device: self.device.name.to_string(),
            mode: Some(self.cost.mode),
            ..Default::default()
        };
        let report = self.cost_inner(plan, layout, Some(&mut trace))?;
        Ok((report, trace))
    }

    fn cost_inner(
        &self,
        plan: &PlannedKernel<'_>,
        layout: &GmemLayout,
        mut trace: Option<&mut Trace>,
    ) -> Result<ExecutionReport, SimError> {
        let p = plan.warps;
        // Shape-mode shared memory: same capacity checks, overlap
        // invalidation, counters, and peak extent — placeholder values.
        let mut smem = SharedMemory::new(self.device.smem_capacity);
        let mut init: Vec<InitFlags> = plan
            .kernel
            .warps
            .iter()
            .map(|w| vec![false; w.frags.len()])
            .collect();

        let mut gmem_read = 0u64;
        let mut gmem_written = 0u64;
        let mut phase_costs: Vec<PhaseCost> = Vec::with_capacity(plan.phases);
        let mut flops_charged = 0u64;

        let mut clock = 0.0f64;
        if let Some(t) = trace.as_deref_mut() {
            t.phase_starts.push(0.0);
        }
        for phase in 0..plan.phases {
            let mut tally = PhaseTally::default();
            let mut writes: Vec<(usize, (usize, usize))> = Vec::new();
            let mut reads: Vec<(usize, (usize, usize))> = Vec::new();
            let mut raw_events: Vec<(usize, TraceKind, u64, String)> = Vec::new();

            #[allow(clippy::needless_range_loop)] // warp id is semantic, not positional
            for w in 0..p {
                let prog = &plan.kernel.warps[w];
                let mut warp_flops: std::collections::BTreeMap<crate::precision::Precision, u64> =
                    std::collections::BTreeMap::new();
                for op in plan.ops(w, phase) {
                    let before = flops_charged;
                    let before_tally = (
                        tally.smem_bytes_written,
                        tally.smem_bytes_read,
                        tally.gmem_bytes,
                    );
                    let mma_prec = if let Op::Mma { a, .. } = *op {
                        prog.frags.get(a).map(|d| d.precision)
                    } else {
                        None
                    };
                    self.cost_op(
                        w,
                        prog,
                        op,
                        layout,
                        &mut smem,
                        &mut init[w],
                        &mut tally,
                        &mut writes,
                        &mut reads,
                        &mut flops_charged,
                        &mut gmem_read,
                        &mut gmem_written,
                    )?;
                    if let Some(prec) = mma_prec {
                        *warp_flops.entry(prec).or_insert(0) += flops_charged - before;
                    }
                    if trace.is_some() {
                        let (kind, detail) = describe_op(prog, op);
                        let amount = match op {
                            Op::Mma { .. } => flops_charged - before,
                            Op::GlobalLoad { .. } | Op::GlobalStore { .. } => {
                                tally.gmem_bytes - before_tally.2
                            }
                            _ => {
                                (tally.smem_bytes_written - before_tally.0)
                                    + (tally.smem_bytes_read - before_tally.1)
                            }
                        };
                        raw_events.push((w, kind, amount, detail));
                    }
                }
                for (prec, total) in warp_flops {
                    tally.note_warp_flops(prec, total);
                }
            }

            detect_races(&writes, &reads)?;

            let pc = phase_cost(self.device, &self.cost, &tally)?;
            if let Some(t) = trace.as_deref_mut() {
                self.layout_phase_trace(t, phase, clock, &raw_events);
            }
            clock += pc.cycles(self.cost.mode);
            if let Some(t) = trace.as_deref_mut() {
                t.phase_starts.push(clock);
            }
            phase_costs.push(pc);
        }

        let mut totals = PhaseCost::default();
        for pc in &phase_costs {
            totals.accumulate(pc);
        }
        let cycles = phase_costs.iter().map(|c| c.cycles(self.cost.mode)).sum();

        Ok(ExecutionReport {
            device_name: self.device.name.to_string(),
            warps: p,
            mode: self.cost.mode,
            phase_costs,
            totals,
            cycles,
            flops_charged,
            smem_bytes_written: smem.bytes_written(),
            smem_bytes_read: smem.bytes_read(),
            smem_extent: smem.peak_extent(),
            gmem_bytes_read: gmem_read,
            gmem_bytes_written: gmem_written,
            registers_per_warp: plan.registers_per_warp.clone(),
        })
    }

    /// Charge one op — the shape-only twin of the functional engine's
    /// `exec_op`, with the same checks in the same order.
    #[allow(clippy::too_many_arguments)]
    fn cost_op(
        &self,
        w: usize,
        prog: &WarpProgram,
        op: &Op,
        layout: &GmemLayout,
        smem: &mut SharedMemory,
        init: &mut InitFlags,
        tally: &mut PhaseTally,
        writes: &mut Vec<(usize, (usize, usize))>,
        reads: &mut Vec<(usize, (usize, usize))>,
        flops_charged: &mut u64,
        gmem_read: &mut u64,
        gmem_written: &mut u64,
    ) -> Result<(), SimError> {
        match *op {
            Op::GlobalLoad {
                dst,
                buf,
                row0,
                col0,
            } => {
                let decl = frag_decl(prog, dst)?;
                let (rows, cols) = (decl.rows, decl.cols);
                let bytes = rows * cols * layout.precision(buf).size_bytes();
                layout.check_read(buf, row0, col0, rows, cols);
                init[dst] = true;
                tally.gmem_bytes += bytes as u64;
                tally.has_gmem_load = true;
                *gmem_read += bytes as u64;
            }
            Op::GlobalStore {
                src,
                buf,
                row0,
                col0,
                accumulate,
            } => {
                require_init_flag(init, src, w, prog)?;
                let d = &prog.frags[src];
                let (rows, cols) = (d.rows, d.cols);
                let bytes = rows * cols * layout.precision(buf).size_bytes();
                layout.check_write(buf, row0, col0, rows, cols);
                *gmem_written += bytes as u64;
                tally.gmem_bytes += bytes as u64;
                if accumulate {
                    // RMW reads too.
                    tally.gmem_bytes += bytes as u64;
                    tally.has_gmem_load = true;
                    *gmem_read += bytes as u64;
                }
            }
            Op::SharedStore { src, addr } => {
                require_init_flag(init, src, w, prog)?;
                let d = &prog.frags[src];
                let elem = d.precision.size_bytes();
                let n = d.elems();
                smem.store_shape(addr, elem, n)
                    .map_err(|detail| SimError::SharedMemoryOverflow { detail })?;
                tally.smem_bytes_written += (n * elem) as u64;
                writes.push((w, (addr, n * elem)));
            }
            Op::SharedLoad { dst, addr } => {
                let decl = frag_decl(prog, dst)?;
                let elem = decl.precision.size_bytes();
                let n = decl.elems();
                smem.load_shape(addr, elem, n)
                    .map_err(|detail| SimError::SharedMemoryFault { warp: w, detail })?;
                init[dst] = true;
                tally.smem_bytes_read += (n * elem) as u64;
                tally.has_smem_load = true;
                reads.push((w, (addr, n * elem)));
            }
            Op::RegCopy { dst, src } => {
                require_init_flag(init, src, w, prog)?;
                let (sr, sc) = {
                    let d = &prog.frags[src];
                    (d.rows, d.cols)
                };
                let dd = frag_decl(prog, dst)?;
                if (dd.rows, dd.cols) != (sr, sc) {
                    return Err(SimError::BadOperand {
                        detail: format!(
                            "RegCopy shape mismatch: {}x{} -> {}x{}",
                            sr, sc, dd.rows, dd.cols
                        ),
                    });
                }
                init[dst] = true;
                tally.reg_copies += 1;
            }
            Op::ZeroAcc { frag } => {
                frag_decl(prog, frag)?;
                init[frag] = true;
            }
            Op::Mma {
                d,
                a,
                b,
                a_cols,
                b_rows,
            } => {
                require_init_flag(init, a, w, prog)?;
                require_init_flag(init, b, w, prog)?;
                require_init_flag(init, d, w, prog)?;
                let flops = self.cost_mma(prog, d, a, b, a_cols, b_rows, tally)?;
                *flops_charged += flops;
            }
            Op::Scale { frag, .. } => {
                require_init_flag(init, frag, w, prog)?;
                tally.reg_copies += 1;
            }
            Op::AddAssign { dst, src } => {
                require_init_flag(init, dst, w, prog)?;
                require_init_flag(init, src, w, prog)?;
                let (dd, sd) = (&prog.frags[dst], &prog.frags[src]);
                if (dd.rows, dd.cols) != (sd.rows, sd.cols) {
                    return Err(SimError::BadOperand {
                        detail: format!(
                            "AddAssign shape mismatch: {}x{} += {}x{}",
                            dd.rows, dd.cols, sd.rows, sd.cols
                        ),
                    });
                }
                tally.reg_copies += 1;
            }
            Op::Unary { frag, .. } => {
                require_init_flag(init, frag, w, prog)?;
                tally.reg_copies += 1;
            }
            Op::AddRowBroadcast { dst, src } => {
                require_init_flag(init, dst, w, prog)?;
                require_init_flag(init, src, w, prog)?;
                let (dd, sd) = (&prog.frags[dst], &prog.frags[src]);
                if sd.rows != 1 || sd.cols != dd.cols {
                    return Err(SimError::BadOperand {
                        detail: format!(
                            "AddRowBroadcast needs a 1x{} row, got {}x{}",
                            dd.cols, sd.rows, sd.cols
                        ),
                    });
                }
                tally.reg_copies += 1;
            }
            Op::MetaStore { addr, bytes } => {
                if addr + bytes > smem.capacity() {
                    return Err(SimError::SharedMemoryOverflow {
                        detail: format!("metadata at {addr}+{bytes} exceeds {} B", smem.capacity()),
                    });
                }
                tally.smem_bytes_written += bytes as u64;
                writes.push((w, (addr, bytes)));
            }
            Op::MetaLoad { addr, bytes } => {
                tally.smem_bytes_read += bytes as u64;
                tally.has_smem_load = true;
                reads.push((w, (addr, bytes)));
            }
            Op::Barrier => unreachable!("barriers are consumed by the phase structure"),
        }
        Ok(())
    }

    /// Validate and charge one MMA — the shape checks of the functional
    /// `exec_mma` in the same order, with the padded flop count computed
    /// directly (it never depended on values).
    #[allow(clippy::too_many_arguments)]
    fn cost_mma(
        &self,
        prog: &WarpProgram,
        d: usize,
        a: usize,
        b: usize,
        a_cols: Option<(usize, usize)>,
        b_rows: Option<(usize, usize)>,
        tally: &mut PhaseTally,
    ) -> Result<u64, SimError> {
        let (ad, bd, dd) = (
            frag_decl(prog, a)?.clone(),
            frag_decl(prog, b)?.clone(),
            frag_decl(prog, d)?.clone(),
        );
        if ad.precision != bd.precision {
            return Err(SimError::ShapeMismatch {
                detail: format!("A is {:?} but B is {:?}", ad.precision, bd.precision),
            });
        }
        let (ac0, ak) = a_cols.unwrap_or((0, ad.cols));
        let (br0, bk) = b_rows.unwrap_or((0, bd.rows));
        if ac0 + ak > ad.cols || br0 + bk > bd.rows {
            return Err(SimError::BadOperand {
                detail: format!(
                    "k-slice out of bounds: a[:, {ac0}..{}] of {} cols, b[{br0}..{}, :] of {} rows",
                    ac0 + ak,
                    ad.cols,
                    br0 + bk,
                    bd.rows
                ),
            });
        }
        if ak != bk {
            return Err(SimError::ShapeMismatch {
                detail: format!("k extents differ: {ak} vs {bk}"),
            });
        }
        if dd.rows != ad.rows || dd.cols != bd.cols {
            return Err(SimError::ShapeMismatch {
                detail: format!(
                    "C is {}x{} but A·B is {}x{}",
                    dd.rows, dd.cols, ad.rows, bd.cols
                ),
            });
        }
        let shape =
            shape_for(self.device, ad.precision).ok_or_else(|| SimError::UnsupportedPrecision {
                device: self.device.name.to_string(),
                precision: ad.precision.label().to_string(),
            })?;
        let (m, n, k) = (ad.rows, bd.cols, ak);
        let flops = shape.padded_flops(m, n, k);
        tally.add_flops(ad.precision, flops);
        Ok(flops)
    }
}
