//! Execute pass: numerics only, no cycle accounting.
//!
//! Interprets a [`PlannedKernel`] phase by phase.
//! For each phase a static access analysis decides between two paths
//! that produce bit-identical state:
//!
//! * **Parallel fast path** — when the phase's warps touch disjoint
//!   shared-memory and global-memory ranges (the common case: race-free
//!   KAMI kernels are disjoint by construction), warps run concurrently
//!   under rayon. Each warp interprets its ops against its own register
//!   fragments, a snapshot clone of shared memory, and read-only global
//!   memory; its shared-memory stores and global writes are journaled
//!   and applied to the real state in warp order after the phase, so
//!   floating-point accumulation order is exactly the interleaved
//!   engine's.
//! * **Serial fallback** — any cross-warp overlap, same-phase
//!   read-after-write on global memory, or statically out-of-bounds
//!   window sends the phase through the legacy op loop (including race
//!   detection), so every fault surfaces with the same error, panic
//!   message, and ordering as [`Engine::run`].
//!
//! The pass performs no tallying and consults no
//! [`CostConfig`](crate::cost::CostConfig): cycles are the cost pass's
//! business alone.

use super::backend::{BackendKind, ExecBackend, ExecOutcome};
use super::PlannedKernel;
use crate::cost::PhaseTally;
use crate::engine::{detect_races, frag_decl, overlap, require_init, Engine};
use crate::error::SimError;
use crate::fragment::FragValue;
use crate::memory::global::{BufferId, GlobalMemory};
use crate::memory::shared::SharedMemory;
use crate::program::Op;
use rayon::prelude::*;

/// The reference execution backend: the rayon journaled interpreter
/// re-homed behind the [`ExecBackend`] seam. Conflict-free phases fan
/// out across warps; anything the static analysis cannot prove safe
/// runs through the legacy serial loop with full race detection.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimBackend;

impl ExecBackend for SimBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sim
    }

    fn execute(
        &self,
        engine: &Engine<'_>,
        plan: &PlannedKernel<'_>,
        gmem: &mut GlobalMemory,
    ) -> Result<ExecOutcome, SimError> {
        let p = plan.warps;
        let mut smem = SharedMemory::new(engine.device.smem_capacity);
        let mut frags: Vec<Vec<FragValue>> = plan
            .kernel
            .warps
            .iter()
            .map(|w| w.frags.iter().cloned().map(FragValue::new).collect())
            .collect();

        let mut fast_phases = 0usize;
        for phase in 0..plan.phases {
            if p > 1 && engine.phase_is_parallel_safe(plan, phase, gmem) {
                engine.run_phase_parallel(plan, phase, gmem, &mut smem, &mut frags)?;
                fast_phases += 1;
            } else {
                engine.run_phase_serial(plan, phase, gmem, &mut smem, &mut frags)?;
            }
        }
        Ok(ExecOutcome {
            backend: BackendKind::Sim,
            phases: plan.phases,
            fast_phases,
            fallback_phases: plan.phases - fast_phases,
        })
    }
}

/// One warp's journaled side effects from an isolated parallel run.
#[derive(Default)]
struct WarpEffects {
    /// Shared-memory stores in program order: `(addr, elem_size, values)`.
    smem_stores: Vec<(usize, usize, Vec<f64>)>,
    /// Global writes in program order.
    gmem_writes: Vec<DeferredWrite>,
    /// Bytes read from global memory (settled onto the real counters).
    gmem_read_bytes: u64,
}

struct DeferredWrite {
    buf: BufferId,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
    values: Vec<f64>,
    accumulate: bool,
}

/// A global-memory window access for the static phase analysis.
#[derive(Clone, Copy)]
struct GmemAccess {
    buf: BufferId,
    rows: (usize, usize),
    cols: (usize, usize),
    write: bool,
}

fn windows_overlap(a: &GmemAccess, b: &GmemAccess) -> bool {
    a.buf == b.buf && overlap(a.rows, b.rows) && overlap(a.cols, b.cols)
}

impl<'a> Engine<'a> {
    /// Execute pass: run the planned kernel's numerics against `gmem`
    /// through the reference [`SimBackend`]. Bit-identical to the state
    /// [`Engine::run`] leaves behind (fragment values, shared/global
    /// memory contents, global traffic counters) on every kernel that
    /// runs to completion.
    pub fn execute(
        &self,
        plan: &PlannedKernel<'_>,
        gmem: &mut GlobalMemory,
    ) -> Result<(), SimError> {
        SimBackend.execute(self, plan, gmem).map(|_| ())
    }

    /// Execute pass through a selectable [`ExecBackend`]. Every backend
    /// leaves bit-identical state; the returned [`ExecOutcome`] reports
    /// which paths the phases took.
    pub fn execute_with(
        &self,
        backend: BackendKind,
        plan: &PlannedKernel<'_>,
        gmem: &mut GlobalMemory,
    ) -> Result<ExecOutcome, SimError> {
        backend.backend().execute(self, plan, gmem)
    }

    /// Legacy-identical interleaved interpretation of one phase: warps
    /// in order, ops in program order, with same-phase race detection.
    pub(crate) fn run_phase_serial(
        &self,
        plan: &PlannedKernel<'_>,
        phase: usize,
        gmem: &mut GlobalMemory,
        smem: &mut SharedMemory,
        frags: &mut [Vec<FragValue>],
    ) -> Result<(), SimError> {
        let mut tally = PhaseTally::default();
        let mut writes: Vec<(usize, (usize, usize))> = Vec::new();
        let mut reads: Vec<(usize, (usize, usize))> = Vec::new();
        let mut flops_scratch = 0u64;
        for (w, warp_frags) in frags.iter_mut().enumerate() {
            let prog = &plan.kernel.warps[w];
            for op in plan.ops(w, phase) {
                self.exec_op(
                    w,
                    prog,
                    op,
                    gmem,
                    smem,
                    warp_frags,
                    &mut tally,
                    &mut writes,
                    &mut reads,
                    &mut flops_scratch,
                )?;
            }
        }
        detect_races(&writes, &reads)
    }

    /// Fan one conflict-free phase out across warps, then settle journaled
    /// side effects in warp order.
    pub(crate) fn run_phase_parallel(
        &self,
        plan: &PlannedKernel<'_>,
        phase: usize,
        gmem: &mut GlobalMemory,
        smem: &mut SharedMemory,
        frags: &mut Vec<Vec<FragValue>>,
    ) -> Result<(), SimError> {
        let effects: Vec<Result<WarpEffects, SimError>> = {
            let smem_snapshot: &SharedMemory = smem;
            let gmem_snapshot: &GlobalMemory = gmem;
            frags
                .par_iter_mut()
                .enumerate()
                .map(|(w, warp_frags)| {
                    self.exec_warp_isolated(
                        w,
                        plan,
                        phase,
                        smem_snapshot,
                        gmem_snapshot,
                        warp_frags,
                    )
                })
                .collect()
        };
        // Results arrive in warp order, so `?` surfaces the lowest
        // erroring warp — the one the interleaved engine would have
        // reached first.
        for result in effects {
            let eff = result?;
            gmem.note_read_bytes(eff.gmem_read_bytes);
            for wr in eff.gmem_writes {
                gmem.write_window(
                    wr.buf,
                    wr.row0,
                    wr.col0,
                    wr.rows,
                    wr.cols,
                    &wr.values,
                    wr.accumulate,
                );
            }
            for (addr, elem, values) in eff.smem_stores {
                smem.store(addr, elem, &values)
                    .map_err(|detail| SimError::SharedMemoryOverflow { detail })?;
            }
        }
        Ok(())
    }

    /// One warp's ops against a shared-memory snapshot and read-only
    /// global memory; mutations beyond its own fragments are journaled.
    fn exec_warp_isolated(
        &self,
        w: usize,
        plan: &PlannedKernel<'_>,
        phase: usize,
        base_smem: &SharedMemory,
        gmem: &GlobalMemory,
        warp_frags: &mut [FragValue],
    ) -> Result<WarpEffects, SimError> {
        let prog = &plan.kernel.warps[w];
        // Snapshot of the phase-entry state; the warp's own stores land
        // here too, so a same-phase store-then-load sees its own writes
        // exactly as in the interleaved engine.
        let mut smem = base_smem.clone();
        let mut eff = WarpEffects::default();
        let mut tally = PhaseTally::default();
        let mut writes: Vec<(usize, (usize, usize))> = Vec::new();
        let mut reads: Vec<(usize, (usize, usize))> = Vec::new();
        let mut flops_scratch = 0u64;
        for op in plan.ops(w, phase) {
            match *op {
                Op::GlobalLoad {
                    dst,
                    buf,
                    row0,
                    col0,
                } => {
                    let decl = frag_decl(prog, dst)?;
                    let (rows, cols) = (decl.rows, decl.cols);
                    let bytes = rows * cols * gmem.precision(buf).size_bytes();
                    let values = gmem.read_window_pure(buf, row0, col0, rows, cols);
                    warp_frags[dst].store(&values);
                    eff.gmem_read_bytes += bytes as u64;
                }
                Op::GlobalStore {
                    src,
                    buf,
                    row0,
                    col0,
                    accumulate,
                } => {
                    require_init(warp_frags, src, w, prog)?;
                    let (rows, cols) = {
                        let d = &warp_frags[src].decl;
                        (d.rows, d.cols)
                    };
                    gmem.check_write(buf, row0, col0, rows, cols);
                    eff.gmem_writes.push(DeferredWrite {
                        buf,
                        row0,
                        col0,
                        rows,
                        cols,
                        values: warp_frags[src].data.clone(),
                        accumulate,
                    });
                }
                Op::SharedStore { src, addr } => {
                    require_init(warp_frags, src, w, prog)?;
                    let elem = warp_frags[src].decl.precision.size_bytes();
                    let data = warp_frags[src].data.clone();
                    smem.store(addr, elem, &data)
                        .map_err(|detail| SimError::SharedMemoryOverflow { detail })?;
                    eff.smem_stores.push((addr, elem, data));
                }
                _ => self.exec_local_op(
                    w,
                    prog,
                    op,
                    &mut smem,
                    warp_frags,
                    &mut tally,
                    &mut writes,
                    &mut reads,
                    &mut flops_scratch,
                )?,
            }
        }
        Ok(eff)
    }

    /// Static analysis of one phase: `true` when every warp's accesses
    /// are provably independent, so the parallel path reproduces the
    /// interleaved engine's state exactly. Anything uncertain — overlap,
    /// out-of-range ids, out-of-bounds windows, same-phase global
    /// read-after-write — routes to the serial fallback instead.
    ///
    /// [`NativeBackend`](super::native::NativeBackend) reuses this
    /// analysis to gate its lean serial loop: op addresses are static
    /// literals, so the static verdict equals runtime behavior.
    pub(crate) fn phase_is_parallel_safe(
        &self,
        plan: &PlannedKernel<'_>,
        phase: usize,
        gmem: &GlobalMemory,
    ) -> bool {
        let p = plan.warps;
        let mut smem_w: Vec<Vec<(usize, usize)>> = vec![Vec::new(); p];
        let mut smem_r: Vec<Vec<(usize, usize)>> = vec![Vec::new(); p];
        let mut gmem_accs: Vec<Vec<GmemAccess>> = vec![Vec::new(); p];

        for w in 0..p {
            let prog = &plan.kernel.warps[w];
            for op in plan.ops(w, phase) {
                match *op {
                    Op::SharedStore { src, addr } => match prog.frags.get(src) {
                        Some(d) => smem_w[w].push((addr, d.elems() * d.precision.size_bytes())),
                        None => return false,
                    },
                    Op::SharedLoad { dst, addr } => match prog.frags.get(dst) {
                        Some(d) => smem_r[w].push((addr, d.elems() * d.precision.size_bytes())),
                        None => return false,
                    },
                    Op::MetaStore { addr, bytes } => smem_w[w].push((addr, bytes)),
                    Op::MetaLoad { addr, bytes } => smem_r[w].push((addr, bytes)),
                    Op::GlobalLoad {
                        dst,
                        buf,
                        row0,
                        col0,
                    } => match self.gmem_window(gmem, prog, dst, buf, row0, col0, false) {
                        Some(acc) => gmem_accs[w].push(acc),
                        None => return false,
                    },
                    Op::GlobalStore {
                        src,
                        buf,
                        row0,
                        col0,
                        ..
                    } => match self.gmem_window(gmem, prog, src, buf, row0, col0, true) {
                        Some(acc) => gmem_accs[w].push(acc),
                        None => return false,
                    },
                    _ => {}
                }
            }
        }

        // Cross-warp shared-memory overlap of any kind (write/read,
        // write/write — the same pairs race detection rejects).
        for w1 in 0..p {
            for w2 in (w1 + 1)..p {
                for &a in &smem_w[w1] {
                    if smem_w[w2]
                        .iter()
                        .chain(smem_r[w2].iter())
                        .any(|&b| overlap(a, b))
                    {
                        return false;
                    }
                }
                for &a in &smem_r[w1] {
                    if smem_w[w2].iter().any(|&b| overlap(a, b)) {
                        return false;
                    }
                }
            }
        }

        // Cross-warp global overlap where at least one side writes.
        for w1 in 0..p {
            for w2 in (w1 + 1)..p {
                for a in &gmem_accs[w1] {
                    for b in &gmem_accs[w2] {
                        if (a.write || b.write) && windows_overlap(a, b) {
                            return false;
                        }
                    }
                }
            }
        }

        // Same-warp global read after an earlier same-phase write: the
        // parallel path defers writes, so the load would miss them.
        for accs in &gmem_accs {
            for (i, a) in accs.iter().enumerate() {
                if !a.write && accs[..i].iter().any(|b| b.write && windows_overlap(a, b)) {
                    return false;
                }
            }
        }

        true
    }

    /// Resolve one global access to a checked window, or `None` if
    /// anything about it would fault (serial path reproduces the fault).
    #[allow(clippy::too_many_arguments)]
    fn gmem_window(
        &self,
        gmem: &GlobalMemory,
        prog: &crate::program::WarpProgram,
        frag: usize,
        buf: BufferId,
        row0: usize,
        col0: usize,
        write: bool,
    ) -> Option<GmemAccess> {
        let d = prog.frags.get(frag)?;
        if buf.0 >= gmem.buffer_count() {
            return None;
        }
        let (brows, bcols) = gmem.shape(buf);
        if row0 + d.rows > brows || col0 + d.cols > bcols {
            return None;
        }
        Some(GmemAccess {
            buf,
            rows: (row0, d.rows),
            cols: (col0, d.cols),
            write,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::device::gh200;
    use crate::engine::Engine;
    use crate::error::SimError;
    use crate::matrix::Matrix;
    use crate::memory::global::GlobalMemory;
    use crate::precision::Precision;
    use crate::program::BlockKernel;

    /// Build two identical global memories for a differential run.
    fn twin_gmem(build: impl Fn(&mut GlobalMemory)) -> (GlobalMemory, GlobalMemory) {
        let mut a = GlobalMemory::new();
        let mut b = GlobalMemory::new();
        build(&mut a);
        build(&mut b);
        (a, b)
    }

    /// Assert the split pipeline leaves state and report bit-identical
    /// to the legacy interleaved engine on `k`.
    fn assert_split_matches_legacy(k: &BlockKernel, build: impl Fn(&mut GlobalMemory)) {
        let dev = gh200();
        let eng = Engine::new(&dev);
        let (mut g_legacy, mut g_split) = twin_gmem(build);
        let (legacy_rep, legacy_trace) = eng.run_traced(k, &mut g_legacy).unwrap();
        let (split_rep, split_trace) = eng.run_passes_traced(k, &mut g_split).unwrap();
        assert_eq!(
            serde_json::to_string(&legacy_rep).unwrap(),
            serde_json::to_string(&split_rep).unwrap(),
            "report diverges"
        );
        assert_eq!(
            serde_json::to_string(&legacy_trace).unwrap(),
            serde_json::to_string(&split_trace).unwrap(),
            "trace diverges"
        );
        assert_eq!(g_legacy.bytes_read(), g_split.bytes_read());
        assert_eq!(g_legacy.bytes_written(), g_split.bytes_written());
        for i in 0..g_legacy.buffer_count() {
            let id = crate::memory::global::BufferId(i);
            let (l, s) = (g_legacy.download(id), g_split.download(id));
            assert_eq!(
                l.max_abs_diff(&s),
                0.0,
                "buffer '{}' diverges",
                g_legacy.name(id)
            );
        }
    }

    #[test]
    fn parallel_fast_path_matches_legacy_gemm() {
        // All four warps load the same A/B windows (read-only sharing is
        // parallel-safe); disjoint smem staging; warp 0 alone stores C.
        let n = 8;
        let k = BlockKernel::spmd(4, |i, w| {
            let fa = w.frag("A", n, n, Precision::Fp64);
            let fb = w.frag("B", n, n, Precision::Fp64);
            let fc = w.frag("C", n, n, Precision::Fp64);
            w.global_load(fa, crate::memory::global::BufferId(0), 0, 0);
            w.global_load(fb, crate::memory::global::BufferId(1), 0, 0);
            w.zero_acc(fc);
            w.mma(fc, fa, fb);
            w.shared_store(fc, i * n * n * 8);
            w.barrier();
            w.shared_load(fc, i * n * n * 8);
            if i == 0 {
                w.global_store(fc, crate::memory::global::BufferId(2), 0, 0);
            }
        });
        assert_split_matches_legacy(&k, |g| {
            g.upload("A", &Matrix::seeded_uniform(n, n, 1), Precision::Fp64);
            g.upload("B", &Matrix::seeded_uniform(n, n, 2), Precision::Fp64);
            g.alloc_zeroed("C", n, n, Precision::Fp64);
        });
    }

    #[test]
    fn accumulate_stores_match_legacy_in_warp_order() {
        // Each warp accumulates into a disjoint row band of C; warp-order
        // settlement must reproduce the interleaved engine's rounding.
        let k = BlockKernel::spmd(2, |i, w| {
            let fa = w.frag("a", 2, 4, Precision::Fp16);
            w.global_load(fa, crate::memory::global::BufferId(0), i * 2, 0);
            w.global_accumulate(fa, crate::memory::global::BufferId(1), i * 2, 0);
        });
        assert_split_matches_legacy(&k, |g| {
            g.upload("A", &Matrix::seeded_uniform(4, 4, 7), Precision::Fp16);
            g.upload("C", &Matrix::seeded_uniform(4, 4, 9), Precision::Fp16);
        });
    }

    #[test]
    fn same_phase_gmem_rmw_falls_back_to_serial_and_matches() {
        // Warp 0 stores then reloads the same C window inside one phase:
        // the deferred-write fast path cannot see the store, so the
        // analysis must route the phase through the serial interpreter.
        let k = BlockKernel::spmd(2, |i, w| {
            let f = w.frag("x", 2, 2, Precision::Fp64);
            w.global_load(f, crate::memory::global::BufferId(0), 0, 0);
            if i == 0 {
                w.global_store(f, crate::memory::global::BufferId(1), 0, 0);
                w.global_load(f, crate::memory::global::BufferId(1), 0, 0);
            }
        });
        assert_split_matches_legacy(&k, |g| {
            g.upload("A", &Matrix::seeded_uniform(2, 2, 3), Precision::Fp64);
            g.alloc_zeroed("C", 2, 2, Precision::Fp64);
        });
    }

    #[test]
    fn parallel_phase_reports_lowest_warp_error_like_legacy() {
        let dev = gh200();
        let eng = Engine::new(&dev);
        // Disjoint smem addresses (parallel-safe), but warps 1 and 2 both
        // store uninitialized fragments; legacy reaches warp 1 first.
        let k = BlockKernel::spmd(3, |i, w| {
            let f = w.frag("x", 1, 1, Precision::Fp32);
            if i == 0 {
                w.zero_acc(f);
            }
            w.shared_store(f, i * 64);
        });
        let legacy = eng.run(&k, &mut GlobalMemory::new()).map(|_| ());
        let split = eng.run_passes(&k, &mut GlobalMemory::new()).map(|_| ());
        assert!(matches!(
            legacy,
            Err(SimError::UninitializedFragment { warp: 1, .. })
        ));
        assert_eq!(legacy, split);
    }

    #[test]
    fn smem_race_errors_identically_through_both_paths() {
        let dev = gh200();
        let eng = Engine::new(&dev);
        let k = BlockKernel::spmd(2, |i, w| {
            let f = w.frag("x", 1, 1, Precision::Fp32);
            w.zero_acc(f);
            if i == 0 {
                w.shared_store(f, 0);
            } else {
                w.shared_load(f, 0);
            }
        });
        let legacy = eng.run(&k, &mut GlobalMemory::new()).map(|_| ());
        let split = eng.run_passes(&k, &mut GlobalMemory::new()).map(|_| ());
        assert!(matches!(legacy, Err(SimError::SharedMemoryHazard { .. })));
        assert_eq!(legacy, split);
    }
}
