//! The execution-backend seam of the three-pass pipeline.
//!
//! The plan and cost passes are pure analysis: they validate a kernel
//! and price its communication without touching matrix data. The
//! execute pass is the only consumer of [`GlobalMemory`] values — which
//! makes it swappable. An [`ExecBackend`] implements just that pass
//! against a [`PlannedKernel`]; everything above it (cycle accounting,
//! plan caches, scheduling, serving) is backend-agnostic.
//!
//! Two backends ship:
//!
//! * [`SimBackend`](super::exec::SimBackend) — the reference
//!   implementation: the rayon-parallel journaled interpreter with a
//!   serial interleaved fallback and full race detection. Every other
//!   backend is conformance-tested against it (and transitively against
//!   [`Engine::run`](crate::engine::Engine::run), the legacy oracle).
//! * [`NativeBackend`](super::native::NativeBackend) — host-speed
//!   microkernels that replay each phase in the simulator's warp-settle
//!   order, so accumulation order — and therefore bits — are identical.
//!   Phases the static analysis cannot prove conflict-free fall back to
//!   the serial simulator path, so races and faults surface with the
//!   same errors.
//!
//! The contract every backend must honor (what `ExecParity` checks):
//! bit-identical global-buffer contents, identical global traffic
//! counters, and identical `SimError`s (same variant, same message,
//! same lowest-warp ordering) on every kernel.

use super::PlannedKernel;
use crate::engine::Engine;
use crate::error::SimError;
use crate::memory::global::GlobalMemory;
use serde::{Deserialize, Serialize};

/// Which execution backend computes the numbers. Plan and cost passes
/// are unaffected by this choice; only the execute pass dispatches on
/// it. Defaults to [`BackendKind::Sim`], the reference interpreter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize)]
pub enum BackendKind {
    /// Reference simulator: rayon journaled interpreter + race detector.
    #[default]
    Sim,
    /// Host-speed per-precision microkernels, bit-identical to `Sim`.
    Native,
}

// Hand-written so configurations serialized before the backend seam
// existed still deserialize: the vendored serde hands `Null` for a
// missing field, which must resolve to the reference simulator.
impl Deserialize for BackendKind {
    fn from_value(v: &serde::Value) -> Result<Self, String> {
        match v {
            serde::Value::Null => Ok(BackendKind::Sim),
            serde::Value::String(s) => match s.as_str() {
                "Sim" => Ok(BackendKind::Sim),
                "Native" => Ok(BackendKind::Native),
                other => Err(format!("unknown variant `{other}` for BackendKind")),
            },
            _ => Err("expected a string for BackendKind".into()),
        }
    }
}

impl BackendKind {
    /// All backends, in conformance-sweep order.
    pub const ALL: [BackendKind; 2] = [BackendKind::Sim, BackendKind::Native];

    /// Stable lowercase label (CLI flags, bench JSON, metrics).
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Native => "native",
        }
    }

    /// The backend implementation behind this kind.
    pub fn backend(self) -> &'static (dyn ExecBackend + Sync) {
        match self {
            BackendKind::Sim => &super::exec::SimBackend,
            BackendKind::Native => &super::native::NativeBackend,
        }
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sim" => Ok(BackendKind::Sim),
            "native" => Ok(BackendKind::Native),
            other => Err(format!("unknown backend '{other}' (expected sim|native)")),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What one execute-pass run did: which backend ran and how its phases
/// split between the fast path and the serial fallback. Numerics are
/// identical either way — this is observability, not semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecOutcome {
    /// Backend that executed the kernel.
    pub backend: BackendKind,
    /// Total barrier-delimited phases executed.
    pub phases: usize,
    /// Phases through the backend's fast path (rayon fan-out for `Sim`,
    /// lean microkernel loop for `Native`).
    pub fast_phases: usize,
    /// Phases through the serial interleaved fallback (conflicting or
    /// statically unsafe phases that need the race detector).
    pub fallback_phases: usize,
}

/// One execution backend: the execute pass behind a fixed seam.
///
/// Implementations must leave `gmem` (buffer contents *and* traffic
/// counters) bit-identical to what [`SimBackend`](super::exec::SimBackend)
/// leaves, and fail with identical [`SimError`]s on faulting kernels —
/// the `ExecParity` verify check holds every backend to this bar over
/// the full grid.
pub trait ExecBackend {
    /// Which kind this backend is.
    fn kind(&self) -> BackendKind;

    /// Run the planned kernel's numerics against `gmem`.
    fn execute(
        &self,
        engine: &Engine<'_>,
        plan: &PlannedKernel<'_>,
        gmem: &mut GlobalMemory,
    ) -> Result<ExecOutcome, SimError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrips_through_labels() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.label().parse::<BackendKind>().unwrap(), kind);
            assert_eq!(kind.backend().kind(), kind);
        }
        assert!("cuda".parse::<BackendKind>().is_err());
    }

    #[test]
    fn default_is_sim() {
        assert_eq!(BackendKind::default(), BackendKind::Sim);
    }

    #[test]
    fn serde_is_stable() {
        let j = serde_json::to_string(&BackendKind::Native).unwrap();
        assert_eq!(j, "\"Native\"");
        assert_eq!(
            serde_json::from_str::<BackendKind>(&j).unwrap(),
            BackendKind::Native
        );
    }
}
