//! Native execution backend: host-speed microkernels behind the
//! [`ExecBackend`] seam.
//!
//! The simulator's MMA interpreter pays, per accumulation step, two
//! precision round-trips on the inputs (for fp16/bf16 that is a
//! `f64 → half → f64` conversion each) plus per-op slice allocations,
//! journaling, and rayon fan-out. None of that changes the bits:
//! fragment data is invariantly quantized at its declared precision
//! (every write narrows — see [`FragValue::store`]), and every
//! [`Precision::round`] is idempotent, so re-rounding already-quantized
//! inputs is a no-op. The native backend exploits exactly that: its
//! microkernels read inputs as-is and keep only the roundings that
//! matter — one per accumulation step at the accumulator precision
//! (`f64::mul_add` product, then `as f32 as f64` for FP32 accumulators,
//! identity for FP64), and one per element at the fragment's storage
//! precision after each MMA — the same places the simulator rounds.
//!
//! Phase order is the simulator's warp-settle order: warps serially in
//! warp order, ops in program order. The legacy engine runs warps
//! *serially within each phase* too, so this order is identical to both
//! the interleaved oracle and the journaled parallel path. Phases the
//! static analysis (`Engine::phase_is_parallel_safe`) cannot prove
//! conflict-free fall back to the serial simulator loop, so races,
//! faults, panics, and error ordering reproduce exactly.
//!
//! The inner loops are written to autovectorize: for each `(i, l)` the
//! column sweep is a chain-free FMA over independent accumulators,
//! unrolled by four. Unrolling reorders nothing — each `(i, j)` chain
//! still sees its `l`-steps in increasing order.

use super::backend::{BackendKind, ExecBackend, ExecOutcome};
use super::PlannedKernel;
use crate::cost::PhaseTally;
use crate::engine::{frag_decl, require_init, Engine};
use crate::error::SimError;
use crate::fragment::FragValue;
use crate::memory::global::GlobalMemory;
use crate::memory::shared::SharedMemory;
use crate::precision::Precision;
use crate::program::{Op, WarpProgram};
use crate::tensor_core::shape_for;

/// Host-speed execution backend, bit-identical to
/// [`SimBackend`](super::exec::SimBackend) by construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeBackend;

impl ExecBackend for NativeBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Native
    }

    fn execute(
        &self,
        engine: &Engine<'_>,
        plan: &PlannedKernel<'_>,
        gmem: &mut GlobalMemory,
    ) -> Result<ExecOutcome, SimError> {
        let mut smem = SharedMemory::new(engine.device.smem_capacity);
        let mut frags: Vec<Vec<FragValue>> = plan
            .kernel
            .warps
            .iter()
            .map(|w| w.frags.iter().cloned().map(FragValue::new).collect())
            .collect();

        let mut fast_phases = 0usize;
        for phase in 0..plan.phases {
            // The same analysis that gates the sim's parallel path gates
            // the lean loop here (without the p > 1 restriction: a
            // single-warp safe phase needs no race bookkeeping either).
            if engine.phase_is_parallel_safe(plan, phase, gmem) {
                run_phase_native(engine, plan, phase, gmem, &mut smem, &mut frags)?;
                fast_phases += 1;
            } else {
                engine.run_phase_serial(plan, phase, gmem, &mut smem, &mut frags)?;
            }
        }
        Ok(ExecOutcome {
            backend: BackendKind::Native,
            phases: plan.phases,
            fast_phases,
            fallback_phases: plan.phases - fast_phases,
        })
    }
}

/// One statically race-free phase in warp-settle order. MMAs go through
/// the native microkernels; every other op runs the simulator's own
/// handler, so checks, error messages, and traffic counters are shared
/// code, not reimplementations. Race vectors stay unused — the static
/// analysis already proved this phase free of the hazards
/// [`detect_races`](crate::engine::detect_races) would flag.
fn run_phase_native(
    engine: &Engine<'_>,
    plan: &PlannedKernel<'_>,
    phase: usize,
    gmem: &mut GlobalMemory,
    smem: &mut SharedMemory,
    frags: &mut [Vec<FragValue>],
) -> Result<(), SimError> {
    let mut tally = PhaseTally::default();
    let mut writes: Vec<(usize, (usize, usize))> = Vec::new();
    let mut reads: Vec<(usize, (usize, usize))> = Vec::new();
    let mut flops_scratch = 0u64;
    for (w, warp_frags) in frags.iter_mut().enumerate() {
        let prog = &plan.kernel.warps[w];
        for op in plan.ops(w, phase) {
            match *op {
                Op::Mma {
                    d,
                    a,
                    b,
                    a_cols,
                    b_rows,
                } => {
                    require_init(warp_frags, a, w, prog)?;
                    require_init(warp_frags, b, w, prog)?;
                    require_init(warp_frags, d, w, prog)?;
                    native_mma(engine, prog, d, a, b, a_cols, b_rows, warp_frags)?;
                }
                _ => engine.exec_op(
                    w,
                    prog,
                    op,
                    gmem,
                    smem,
                    warp_frags,
                    &mut tally,
                    &mut writes,
                    &mut reads,
                    &mut flops_scratch,
                )?,
            }
        }
    }
    Ok(())
}

/// Native fragment MMA: the same legality checks as
/// [`Engine::exec_mma`], in the same order and with the same messages,
/// then a strided zero-copy microkernel instead of slice extraction and
/// per-step input re-rounding.
#[allow(clippy::too_many_arguments)]
fn native_mma(
    engine: &Engine<'_>,
    prog: &WarpProgram,
    d: usize,
    a: usize,
    b: usize,
    a_cols: Option<(usize, usize)>,
    b_rows: Option<(usize, usize)>,
    warp_frags: &mut [FragValue],
) -> Result<(), SimError> {
    let (ad, bd, dd) = (
        frag_decl(prog, a)?.clone(),
        frag_decl(prog, b)?.clone(),
        frag_decl(prog, d)?.clone(),
    );
    if ad.precision != bd.precision {
        return Err(SimError::ShapeMismatch {
            detail: format!("A is {:?} but B is {:?}", ad.precision, bd.precision),
        });
    }
    let (ac0, ak) = a_cols.unwrap_or((0, ad.cols));
    let (br0, bk) = b_rows.unwrap_or((0, bd.rows));
    if ac0 + ak > ad.cols || br0 + bk > bd.rows {
        return Err(SimError::BadOperand {
            detail: format!(
                "k-slice out of bounds: a[:, {ac0}..{}] of {} cols, b[{br0}..{}, :] of {} rows",
                ac0 + ak,
                ad.cols,
                br0 + bk,
                bd.rows
            ),
        });
    }
    if ak != bk {
        return Err(SimError::ShapeMismatch {
            detail: format!("k extents differ: {ak} vs {bk}"),
        });
    }
    if dd.rows != ad.rows || dd.cols != bd.cols {
        return Err(SimError::ShapeMismatch {
            detail: format!(
                "C is {}x{} but A·B is {}x{}",
                dd.rows, dd.cols, ad.rows, bd.cols
            ),
        });
    }
    shape_for(engine.device, ad.precision).ok_or_else(|| SimError::UnsupportedPrecision {
        device: engine.device.name.to_string(),
        precision: ad.precision.label().to_string(),
    })?;

    let (m, n, k) = (ad.rows, bd.cols, ak);
    let acc = ad.precision.accumulator();
    // All checks passed; take D out so A and B can be borrowed directly.
    // Aliased operands (D doubling as A or B) would see an empty buffer,
    // so they go through copied slices like the simulator.
    if d == a || d == b {
        let a_slice: Vec<f64> = {
            let src = &warp_frags[a].data;
            let mut v = Vec::with_capacity(m * k);
            for r in 0..m {
                v.extend_from_slice(&src[r * ad.cols + ac0..r * ad.cols + ac0 + ak]);
            }
            v
        };
        let b_slice: Vec<f64> = {
            let src = &warp_frags[b].data;
            let mut v = Vec::with_capacity(k * n);
            for r in 0..k {
                v.extend_from_slice(&src[(br0 + r) * bd.cols..(br0 + r) * bd.cols + n]);
            }
            v
        };
        microkernel(
            acc,
            m,
            n,
            k,
            &a_slice,
            k,
            0,
            &b_slice,
            n,
            0,
            &mut warp_frags[d].data,
        );
    } else {
        let mut d_data = std::mem::take(&mut warp_frags[d].data);
        microkernel(
            acc,
            m,
            n,
            k,
            &warp_frags[a].data,
            ad.cols,
            ac0,
            &warp_frags[b].data,
            bd.cols,
            br0,
            &mut d_data,
        );
        warp_frags[d].data = d_data;
    }
    // The accumulator fragment holds values at its own precision — the
    // simulator's post-MMA narrowing, kept verbatim.
    let dp = dd.precision;
    if dp != Precision::Fp64 {
        for x in warp_frags[d].data.iter_mut() {
            *x = dp.round(*x);
        }
    }
    Ok(())
}

/// Dispatch on the accumulator precision. FP64 inputs accumulate at
/// FP64 (the rounding is the identity); everything else accumulates at
/// FP32 — one `as f32 as f64` per step, exactly
/// [`fma_acc`](crate::precision::fma_acc) with the input re-rounding
/// elided (inputs are invariantly pre-quantized).
#[allow(clippy::too_many_arguments)]
#[inline]
fn microkernel(
    acc: Precision,
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    a_stride: usize,
    ac0: usize,
    b: &[f64],
    b_stride: usize,
    br0: usize,
    d: &mut [f64],
) {
    debug_assert_eq!(d.len(), m * n);
    match acc {
        Precision::Fp64 => mma_rows::<false>(m, n, k, a, a_stride, ac0, b, b_stride, br0, d),
        _ => mma_rows::<true>(m, n, k, a, a_stride, ac0, b, b_stride, br0, d),
    }
}

#[inline(always)]
fn fma_step<const ROUND32: bool>(a: f64, b: f64, c: f64) -> f64 {
    let s = a.mul_add(b, c);
    if ROUND32 {
        s as f32 as f64
    } else {
        s
    }
}

/// `d[m×n] += a[:, ac0..ac0+k] · b[br0..br0+k, :]` with the `(i, l, j)`
/// loop order: each `(i, j)` accumulator still sees its `l`-steps in
/// increasing order (bit-identical to the simulator's `(i, j, l)`
/// order), while the inner column sweep is independent FMAs the
/// compiler can vectorize. Explicit 4-way unroll for the common
/// power-of-two tile widths.
#[allow(clippy::too_many_arguments)]
fn mma_rows<const ROUND32: bool>(
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    a_stride: usize,
    ac0: usize,
    b: &[f64],
    b_stride: usize,
    br0: usize,
    d: &mut [f64],
) {
    for i in 0..m {
        let a_row = &a[i * a_stride + ac0..i * a_stride + ac0 + k];
        let d_row = &mut d[i * n..(i + 1) * n];
        for (l, &av) in a_row.iter().enumerate() {
            let b_row = &b[(br0 + l) * b_stride..(br0 + l) * b_stride + n];
            let mut j = 0;
            while j + 4 <= n {
                d_row[j] = fma_step::<ROUND32>(av, b_row[j], d_row[j]);
                d_row[j + 1] = fma_step::<ROUND32>(av, b_row[j + 1], d_row[j + 1]);
                d_row[j + 2] = fma_step::<ROUND32>(av, b_row[j + 2], d_row[j + 2]);
                d_row[j + 3] = fma_step::<ROUND32>(av, b_row[j + 3], d_row[j + 3]);
                j += 4;
            }
            while j < n {
                d_row[j] = fma_step::<ROUND32>(av, b_row[j], d_row[j]);
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::gh200;
    use crate::matrix::Matrix;
    use crate::memory::global::BufferId;
    use crate::program::BlockKernel;

    /// Every `Precision::round` must be idempotent: the microkernels
    /// skip input re-rounding on that invariant.
    #[test]
    fn rounding_is_idempotent_on_quantized_values() {
        let precs = [
            Precision::Fp64,
            Precision::Fp32,
            Precision::Tf32,
            Precision::Fp16,
            Precision::Bf16,
            Precision::Fp8E4M3,
        ];
        for p in precs {
            let mut x = -1000.0f64;
            while x < 1000.0 {
                let once = p.round(x);
                assert_eq!(p.round(once), once, "{p:?} not idempotent at {x}");
                x += 0.337;
            }
            for &edge in &[0.0, -0.0, p.max_finite(), -p.max_finite(), 1e300, 1e-300] {
                let once = p.round(edge);
                assert_eq!(p.round(once), once, "{p:?} not idempotent at {edge}");
            }
        }
    }

    fn both_backends(
        k: &BlockKernel,
        build: impl Fn(&mut GlobalMemory),
    ) -> (
        Result<ExecOutcome, SimError>,
        Result<ExecOutcome, SimError>,
        GlobalMemory,
        GlobalMemory,
    ) {
        let dev = gh200();
        let eng = Engine::new(&dev);
        let mut g_sim = GlobalMemory::new();
        let mut g_nat = GlobalMemory::new();
        build(&mut g_sim);
        build(&mut g_nat);
        let sim = eng
            .plan(k)
            .and_then(|p| eng.execute_with(BackendKind::Sim, &p, &mut g_sim));
        let nat = eng
            .plan(k)
            .and_then(|p| eng.execute_with(BackendKind::Native, &p, &mut g_nat));
        (sim, nat, g_sim, g_nat)
    }

    fn assert_state_identical(g_sim: &GlobalMemory, g_nat: &GlobalMemory) {
        assert_eq!(g_sim.bytes_read(), g_nat.bytes_read());
        assert_eq!(g_sim.bytes_written(), g_nat.bytes_written());
        for i in 0..g_sim.buffer_count() {
            let id = BufferId(i);
            assert_eq!(
                g_sim.download(id).max_abs_diff(&g_nat.download(id)),
                0.0,
                "buffer '{}' diverges",
                g_sim.name(id)
            );
        }
    }

    #[test]
    fn native_matches_sim_on_gemm_all_precisions() {
        for prec in [
            Precision::Fp64,
            Precision::Fp32,
            Precision::Tf32,
            Precision::Fp16,
            Precision::Bf16,
            Precision::Fp8E4M3,
        ] {
            let n = 16;
            let k = BlockKernel::spmd(4, |i, w| {
                let fa = w.frag("A", n, n, prec);
                let fb = w.frag("B", n, n, prec);
                let fc = w.frag("C", n, n, prec);
                w.global_load(fa, BufferId(0), 0, 0);
                w.global_load(fb, BufferId(1), 0, 0);
                w.zero_acc(fc);
                w.mma(fc, fa, fb);
                w.shared_store(fc, i * n * n * 8);
                w.barrier();
                w.shared_load(fc, i * n * n * 8);
                if i == 0 {
                    w.global_store(fc, BufferId(2), 0, 0);
                }
            });
            let (sim, nat, g_sim, g_nat) = both_backends(&k, |g| {
                g.upload("A", &Matrix::seeded_uniform(n, n, 1), prec);
                g.upload("B", &Matrix::seeded_uniform(n, n, 2), prec);
                g.alloc_zeroed("C", n, n, prec);
            });
            let sim = sim.unwrap();
            let nat = nat.unwrap();
            assert_eq!(sim.backend, BackendKind::Sim);
            assert_eq!(nat.backend, BackendKind::Native);
            assert_eq!(nat.fallback_phases, 0, "{prec:?}: safe phases fell back");
            assert_state_identical(&g_sim, &g_nat);
        }
    }

    #[test]
    fn native_matches_sim_on_sliced_mma() {
        // k-sliced MMA with a strided A window exercises the zero-copy
        // stride math against the simulator's slice extraction.
        let (m, n, kk) = (8, 8, 32);
        let k = BlockKernel::spmd(1, |_, w| {
            let fa = w.frag("A", m, kk, Precision::Fp16);
            let fb = w.frag("B", kk, n, Precision::Fp16);
            let fc = w.frag("C", m, n, Precision::Fp16);
            w.global_load(fa, BufferId(0), 0, 0);
            w.global_load(fb, BufferId(1), 0, 0);
            w.zero_acc(fc);
            for chunk in 0..4 {
                w.ops.push(Op::Mma {
                    d: fc,
                    a: fa,
                    b: fb,
                    a_cols: Some((chunk * 8, 8)),
                    b_rows: Some((chunk * 8, 8)),
                });
            }
            w.global_store(fc, BufferId(2), 0, 0);
        });
        let (sim, nat, g_sim, g_nat) = both_backends(&k, |g| {
            g.upload("A", &Matrix::seeded_uniform(m, kk, 5), Precision::Fp16);
            g.upload("B", &Matrix::seeded_uniform(kk, n, 6), Precision::Fp16);
            g.alloc_zeroed("C", m, n, Precision::Fp16);
        });
        sim.unwrap();
        nat.unwrap();
        assert_state_identical(&g_sim, &g_nat);
    }

    #[test]
    fn unsafe_phase_falls_back_and_errors_identically() {
        // Cross-warp smem overlap: both backends must fall back to the
        // serial loop and surface the identical hazard.
        let k = BlockKernel::spmd(2, |i, w| {
            let f = w.frag("x", 1, 1, Precision::Fp32);
            w.zero_acc(f);
            if i == 0 {
                w.shared_store(f, 0);
            } else {
                w.shared_load(f, 0);
            }
        });
        let (sim, nat, _, _) = both_backends(&k, |_| {});
        assert!(matches!(sim, Err(SimError::SharedMemoryHazard { .. })));
        assert_eq!(sim, nat);
    }

    #[test]
    fn native_reports_lowest_warp_error_like_sim() {
        let k = BlockKernel::spmd(3, |i, w| {
            let f = w.frag("x", 1, 1, Precision::Fp32);
            if i == 0 {
                w.zero_acc(f);
            }
            w.shared_store(f, i * 64);
        });
        let (sim, nat, _, _) = both_backends(&k, |_| {});
        assert!(matches!(
            sim,
            Err(SimError::UninitializedFragment { warp: 1, .. })
        ));
        assert_eq!(sim, nat);
    }

    #[test]
    fn native_mma_error_messages_match_sim() {
        // k-extent mismatch inside an otherwise safe phase.
        let k = BlockKernel::spmd(1, |_, w| {
            let a = w.frag("a", 4, 8, Precision::Fp16);
            let b = w.frag("b", 4, 4, Precision::Fp16);
            let c = w.frag("c", 4, 4, Precision::Fp32);
            w.zero_acc(a);
            w.zero_acc(b);
            w.zero_acc(c);
            w.mma(c, a, b);
        });
        let (sim, nat, _, _) = both_backends(&k, |_| {});
        assert!(sim.is_err());
        assert_eq!(
            format!("{:?}", sim.unwrap_err()),
            format!("{:?}", nat.unwrap_err())
        );
    }

    #[test]
    fn native_single_warp_safe_phase_skips_fallback() {
        // SimBackend runs single-warp phases serially (p > 1 gate); the
        // native lean loop has no such gate and must still match.
        let n = 8;
        let k = BlockKernel::spmd(1, |_, w| {
            let fa = w.frag("A", n, n, Precision::Fp32);
            let fb = w.frag("B", n, n, Precision::Fp32);
            let fc = w.frag("C", n, n, Precision::Fp32);
            w.global_load(fa, BufferId(0), 0, 0);
            w.global_load(fb, BufferId(1), 0, 0);
            w.zero_acc(fc);
            w.mma(fc, fa, fb);
            w.global_store(fc, BufferId(2), 0, 0);
        });
        let (sim, nat, g_sim, g_nat) = both_backends(&k, |g| {
            g.upload("A", &Matrix::seeded_uniform(n, n, 3), Precision::Fp32);
            g.upload("B", &Matrix::seeded_uniform(n, n, 4), Precision::Fp32);
            g.alloc_zeroed("C", n, n, Precision::Fp32);
        });
        assert_eq!(sim.unwrap().fast_phases, 0);
        assert_eq!(nat.unwrap().fast_phases, 1);
        assert_state_identical(&g_sim, &g_nat);
    }
}
