//! Multi-block occupancy analysis — the steady-state extension of the
//! paper's single-block cost model.
//!
//! The paper's block-level benchmarks launch 16 384 concurrent blocks;
//! per-SM throughput then depends on how many blocks fit *resident*
//! (registers, shared memory, warp and block slots) and which shared
//! resource binds first once residents overlap each other's latency:
//!
//! ```text
//! rate = min( resident / serial_cycles,            // latency-limited
//!             1 / max(smem_bw, tc, gmem_bw) )      // resource-limited
//! ```
//!
//! This module quantifies that — it is the lens EXPERIMENTS.md uses to
//! discuss the single-block model's known deviations (occupancy-driven
//! effects like cuBLASDx's 27 KB footprint penalty and Fig 10's parking
//! speedup).

use crate::device::DeviceSpec;
use crate::report::ExecutionReport;
use serde::{Deserialize, Serialize};

/// The resource that caps residency or throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limiter {
    Registers,
    SharedMemoryCapacity,
    WarpSlots,
    BlockSlots,
    SharedMemoryBandwidth,
    TensorCores,
    GlobalBandwidth,
    Latency,
}

/// Occupancy analysis of one block kernel on one device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Occupancy {
    /// Blocks resident per SM.
    pub resident_blocks: u32,
    /// What capped residency.
    pub residency_limiter: Limiter,
    /// Blocks completed per cycle per SM at steady state.
    pub rate_per_cycle: f64,
    /// What caps the steady-state rate.
    pub rate_limiter: Limiter,
    /// Device throughput in TFLOPS at `useful_flops` per block.
    pub steady_tflops: f64,
}

/// Analyze residency and steady-state throughput for a block whose
/// execution produced `report`, assuming an unbounded stream of
/// identical blocks (the paper's 16 384-block setting). Global-memory
/// traffic counts as a shared resource — the batched/device-level
/// regime (§5.4).
pub fn analyze(device: &DeviceSpec, report: &ExecutionReport, useful_flops: u64) -> Occupancy {
    analyze_with(device, report, useful_flops, true)
}

/// Like [`analyze`], but excluding global memory — the paper's
/// *block-level* regime, where each kernel loops over its resident data
/// ("each looping 1000 times inside the CUDA kernel to ignore global
/// I/O costs", Fig 3) and only on-chip resources bind.
pub fn analyze_on_chip(
    device: &DeviceSpec,
    report: &ExecutionReport,
    useful_flops: u64,
) -> Occupancy {
    analyze_with(device, report, useful_flops, false)
}

fn analyze_with(
    device: &DeviceSpec,
    report: &ExecutionReport,
    useful_flops: u64,
    include_global: bool,
) -> Occupancy {
    let warps = report.warps.max(1) as u32;

    // --- residency ---
    // Residency limits are floor(capacity / per-block demand), computed
    // in u64 with saturation: the register product can exceed u32 for
    // synthetic reports (wrapping would over-report residents), and a
    // bare `as u32` on the quotient truncates instead of flooring.
    let regs_per_block = u64::from(report.max_registers().measured_regs.max(1))
        * u64::from(device.warp_size)
        * u64::from(warps);
    let by_regs = floor_limit(u64::from(device.regs_per_sm), regs_per_block);
    let by_smem = floor_limit(device.smem_capacity as u64, report.smem_extent as u64);
    let by_warps = device.max_warps_per_sm / warps;
    let by_blocks = device.max_blocks_per_sm;
    let (resident, residency_limiter) = [
        (by_regs, Limiter::Registers),
        (by_smem, Limiter::SharedMemoryCapacity),
        (by_warps, Limiter::WarpSlots),
        (by_blocks, Limiter::BlockSlots),
    ]
    .into_iter()
    .min_by_key(|&(v, _)| v)
    .expect("non-empty");
    // A block whose footprint exceeds a per-SM resource still runs
    // alone (the engine has already validated the real footprint), so
    // residency is promoted from 0 to 1 rather than reported as
    // unschedulable.
    let resident = resident.max(1);

    // --- steady-state rate ---
    let serial = if include_global {
        report.cycles.max(1e-9)
    } else {
        report.on_chip_cycles().max(1e-9)
    };
    let smem_bw_cycles =
        (report.smem_bytes_written + report.smem_bytes_read) as f64 / device.smem_bytes_per_cycle();
    let tc_cycles = report.totals.compute;
    let gmem_bw_cycles = if include_global {
        (report.gmem_bytes_read + report.gmem_bytes_written) as f64 / device.gmem_bytes_per_cycle
    } else {
        0.0
    };
    let (bottleneck_cycles, mut rate_limiter) = [
        (smem_bw_cycles, Limiter::SharedMemoryBandwidth),
        (tc_cycles, Limiter::TensorCores),
        (gmem_bw_cycles, Limiter::GlobalBandwidth),
    ]
    .into_iter()
    .max_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))
    .expect("non-empty");

    let latency_rate = f64::from(resident) / serial;
    let resource_rate = if bottleneck_cycles > 0.0 {
        1.0 / bottleneck_cycles
    } else {
        f64::INFINITY
    };
    let rate = if latency_rate < resource_rate {
        rate_limiter = Limiter::Latency;
        latency_rate
    } else {
        resource_rate
    };

    Occupancy {
        resident_blocks: resident,
        residency_limiter,
        rate_per_cycle: rate,
        rate_limiter,
        steady_tflops: useful_flops as f64 * rate * f64::from(device.num_sms) * device.clock_hz()
            / 1e12,
    }
}

/// Exact floor of `capacity / per_block`, saturating to `u32::MAX` when
/// the block consumes none of the resource (which then never binds).
fn floor_limit(capacity: u64, per_block: u64) -> u32 {
    if per_block == 0 {
        return u32::MAX;
    }
    u32::try_from(capacity / per_block).unwrap_or(u32::MAX)
}

/// Steady-state view of a *stream* of variable-length work items — the
/// sparse extension of [`Occupancy`]. A sparse schedule (SpMM block
/// rows, SpGEMM output blocks) is a stream where item `i` carries
/// `iters[i]` unit block products; the device retires
/// `rate_per_cycle · num_sms` units per cycle at steady state, so the
/// stream cannot finish faster than `ideal_cycles` no matter how the
/// scheduler places it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamSteady {
    /// Unit block products retired per cycle per SM (the unit kernel's
    /// [`Occupancy::rate_per_cycle`]).
    pub iter_rate_per_cycle: f64,
    /// Lower-bound cycles for the whole stream across all SMs.
    pub ideal_cycles: f64,
    /// Device TFLOPS at the steady unit rate.
    pub steady_tflops: f64,
    /// Mean units per (nonempty) item.
    pub mean_iters_per_item: f64,
    /// `max/mean` units per item: 1 for uniform streams, large under
    /// power-law nnz skew — the quantity weighted decompositions react
    /// to.
    pub skew: f64,
}

/// Analyze the steady state of a variable-length stream whose unit
/// block produced `unit` (via [`analyze`]) and computes `unit_flops`
/// useful flops; `iters[i]` is the number of unit products item `i`
/// carries (per-row-block nnz for SpMM, contributing pairs for SpGEMM).
pub fn analyze_stream(
    device: &DeviceSpec,
    unit: &Occupancy,
    unit_flops: u64,
    iters: &[usize],
) -> StreamSteady {
    let total: u64 = iters.iter().map(|&w| w as u64).sum();
    let nonempty = iters.iter().filter(|&&w| w > 0).count();
    let max = iters.iter().copied().max().unwrap_or(0);
    let mean = if nonempty > 0 {
        total as f64 / nonempty as f64
    } else {
        0.0
    };
    let rate = unit.rate_per_cycle;
    let device_rate = rate * f64::from(device.num_sms);
    StreamSteady {
        iter_rate_per_cycle: rate,
        ideal_cycles: if device_rate > 0.0 {
            total as f64 / device_rate
        } else {
            f64::INFINITY
        },
        steady_tflops: unit_flops as f64 * device_rate * device.clock_hz() / 1e12,
        mean_iters_per_item: mean,
        skew: if mean > 0.0 { max as f64 / mean } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostMode, PhaseCost};
    use crate::memory::regfile::RegisterUsage;

    fn report(
        warps: usize,
        regs: u32,
        smem_extent: usize,
        cycles: f64,
        comm_bytes: u64,
        compute: f64,
    ) -> ExecutionReport {
        let totals = PhaseCost {
            comm: comm_bytes as f64 / 128.0,
            compute,
            global: 0.0,
            reg: 0.0,
        };
        ExecutionReport {
            device_name: "test".into(),
            warps,
            mode: CostMode::Serial,
            phase_costs: vec![totals],
            totals,
            cycles,
            flops_charged: 0,
            smem_bytes_written: comm_bytes / 2,
            smem_bytes_read: comm_bytes / 2,
            smem_extent,
            gmem_bytes_read: 0,
            gmem_bytes_written: 0,
            registers_per_warp: vec![RegisterUsage {
                theoretical_regs: regs,
                measured_regs: regs,
            }],
        }
    }

    #[test]
    fn register_bound_residency() {
        let dev = crate::device::gh200();
        // 4 warps × 128 regs × 32 threads = 16384 regs -> 4 resident.
        let r = report(4, 128, 1024, 1000.0, 1024, 10.0);
        let occ = analyze(&dev, &r, 1000);
        assert_eq!(occ.resident_blocks, 4);
        assert_eq!(occ.residency_limiter, Limiter::Registers);
    }

    #[test]
    fn smem_bound_residency() {
        let dev = crate::device::gh200();
        // 64 KB footprint on 228 KB capacity -> 3 resident.
        let r = report(4, 16, 64 * 1024, 1000.0, 1024, 10.0);
        let occ = analyze(&dev, &r, 1000);
        assert_eq!(occ.resident_blocks, 3);
        assert_eq!(occ.residency_limiter, Limiter::SharedMemoryCapacity);
    }

    #[test]
    fn smem_residency_boundaries() {
        let dev = crate::device::gh200();
        let cap = dev.smem_capacity; // 228 KB on GH200
        assert_eq!(cap % 4, 0, "test assumes capacity divisible by 4");
        // Exactly at the limit: 4 blocks of cap/4 fill the SM.
        let r = report(4, 16, cap / 4, 1000.0, 1024, 10.0);
        let occ = analyze(&dev, &r, 1000);
        assert_eq!(occ.resident_blocks, 4);
        assert_eq!(occ.residency_limiter, Limiter::SharedMemoryCapacity);
        // One byte over: the 4th block no longer fits.
        let r = report(4, 16, cap / 4 + 1, 1000.0, 1024, 10.0);
        assert_eq!(analyze(&dev, &r, 1000).resident_blocks, 3);
        // One byte under: still 4 (floor, not round).
        let r = report(4, 16, cap / 4 - 1, 1000.0, 1024, 10.0);
        assert_eq!(analyze(&dev, &r, 1000).resident_blocks, 4);
    }

    #[test]
    fn register_residency_boundaries() {
        let dev = crate::device::gh200();
        // 4 warps × 32 threads = 128 threads; 65536 regs per SM.
        assert_eq!(dev.regs_per_sm, 65536);
        // regs = 128 -> 16384 per block: exactly 4 resident.
        let occ = analyze(&dev, &report(4, 128, 1024, 1000.0, 1024, 10.0), 1000);
        assert_eq!(occ.resident_blocks, 4);
        assert_eq!(occ.residency_limiter, Limiter::Registers);
        // One register more per thread: 16512 per block, floor -> 3.
        let occ = analyze(&dev, &report(4, 129, 1024, 1000.0, 1024, 10.0), 1000);
        assert_eq!(occ.resident_blocks, 3);
        // One register less: 16256 per block, still floor -> 4.
        let occ = analyze(&dev, &report(4, 127, 1024, 1000.0, 1024, 10.0), 1000);
        assert_eq!(occ.resident_blocks, 4);
    }

    #[test]
    fn huge_synthetic_block_does_not_overflow() {
        let dev = crate::device::gh200();
        // 255 regs × 32 threads × 2^20 warps overflows a u32 product;
        // pre-fix this paniced in debug (or wrapped and over-reported
        // residents in release). It must floor to 0 and promote to 1.
        let r = report(1 << 20, 255, 1024, 1000.0, 1024, 10.0);
        let occ = analyze(&dev, &r, 1000);
        assert_eq!(occ.resident_blocks, 1);
    }

    #[test]
    fn latency_limited_when_few_residents() {
        let dev = crate::device::gh200();
        // Huge serial latency, tiny resource use, 1 resident by smem.
        let r = report(4, 16, 200 * 1024, 100_000.0, 128, 1.0);
        let occ = analyze(&dev, &r, 1000);
        assert_eq!(occ.rate_limiter, Limiter::Latency);
        assert!((occ.rate_per_cycle - 1.0 / 100_000.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_limited_with_many_residents() {
        let dev = crate::device::gh200();
        // Lots of residents, heavy smem traffic -> bandwidth binds.
        let r = report(2, 16, 512, 500.0, 128 * 1024, 10.0);
        let occ = analyze(&dev, &r, 1000);
        assert_eq!(occ.rate_limiter, Limiter::SharedMemoryBandwidth);
        let expect = 1.0 / (128.0 * 1024.0 / 128.0);
        assert!((occ.rate_per_cycle - expect).abs() < 1e-12);
    }

    #[test]
    fn on_chip_variant_ignores_global() {
        let dev = crate::device::gh200();
        let mut r = report(4, 32, 4096, 1000.0, 2048, 50.0);
        r.gmem_bytes_read = 10_000_000; // would dominate the full metric
        let full = analyze(&dev, &r, 1000);
        let on_chip = analyze_on_chip(&dev, &r, 1000);
        assert_eq!(full.rate_limiter, Limiter::GlobalBandwidth);
        assert_ne!(on_chip.rate_limiter, Limiter::GlobalBandwidth);
        assert!(on_chip.steady_tflops > full.steady_tflops);
    }

    #[test]
    fn stream_steady_uniform_and_skewed() {
        let dev = crate::device::gh200();
        let r = report(4, 64, 4096, 1000.0, 1024, 100.0);
        let unit = analyze(&dev, &r, 1_000);
        // Uniform stream: skew 1, ideal cycles = total / device rate.
        let uniform = vec![4usize; 100];
        let s = analyze_stream(&dev, &unit, 1_000, &uniform);
        assert_eq!(s.skew, 1.0);
        assert_eq!(s.mean_iters_per_item, 4.0);
        let want = 400.0 / (unit.rate_per_cycle * f64::from(dev.num_sms));
        assert!((s.ideal_cycles - want).abs() < 1e-9);
        assert!((s.steady_tflops - unit.steady_tflops).abs() < 1e-9);
        // Power-law-ish stream: same total, one dominant item.
        let skewed = [vec![301usize], vec![1usize; 99]].concat();
        let t = analyze_stream(&dev, &unit, 1_000, &skewed);
        assert!((t.ideal_cycles - s.ideal_cycles).abs() < 1e-9);
        assert!(t.skew > 50.0, "skew {}", t.skew);
        // Empty items don't dilute the mean.
        let holes = [vec![8usize, 0, 8, 0], vec![0usize; 10]].concat();
        let h = analyze_stream(&dev, &unit, 1_000, &holes);
        assert_eq!(h.mean_iters_per_item, 8.0);
        assert_eq!(h.skew, 1.0);
    }

    #[test]
    fn steady_tflops_scale() {
        let dev = crate::device::gh200();
        let r = report(4, 64, 4096, 1000.0, 1024, 100.0);
        let occ = analyze(&dev, &r, 1_000_000);
        assert!(occ.steady_tflops > 0.0 && occ.steady_tflops.is_finite());
        // Never exceeds what zero-latency tensor-core-bound would give.
        let tc_bound = 1_000_000.0 / 100.0 * 132.0 * 1.98e9 / 1e12;
        assert!(occ.steady_tflops <= tc_bound * 1.0001);
    }
}
