//! Cycle accounting.
//!
//! The engine tallies, per barrier-delimited phase, the raw resource use
//! of the block (shared-memory bytes moved, tensor-core flops by
//! precision, global bytes, register copies); this module turns those
//! tallies into cycles with the exact semantics of the paper's model:
//!
//! * communication: `L_sm·[phase has a shared load] + W/(θ_w·B_sm) +
//!   R/(θ_r·B_sm)` — stores are fire-and-forget (store-buffer semantics),
//!   loads pay the latency, so one communication *stage* (store phase +
//!   load phase) is charged `L_sm` exactly once, matching Formulas 2/6/10.
//! * compute: `flops / (n_tc · O_tc)` — the block's p concurrent warp
//!   MMAs contend for the SM's `n_tc` tensor cores, which is the
//!   `p/n_tc · T_cp` term of Formulas 4/8/12.
//! * global: `L_gm·[phase has a global load] + bytes/B_gm`.
//!
//! Two composition modes: [`CostMode::Serial`] adds communication and
//! computation (the closed forms of §4), [`CostMode::Overlap`] takes their
//! max (the warp-scheduler interleaving §4.7 argues the hardware achieves).

use crate::device::DeviceSpec;
use crate::error::SimError;
use crate::precision::Precision;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How communication and computation cycles combine within one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CostMode {
    /// Sum — the paper's closed-form analysis.
    #[default]
    Serial,
    /// `max(comm, compute)` — perfect warp-scheduler overlap.
    Overlap,
}

/// Tunable parameters of the cost model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostConfig {
    pub mode: CostMode,
    /// Read bank-conflict factor `θ_r ∈ (0, 1]`.
    pub theta_r: f64,
    /// Write bank-conflict factor `θ_w ∈ (0, 1]`.
    pub theta_w: f64,
    /// Effective MMA issue efficiency ∈ (0, 1]: fraction of the peak
    /// tensor rate the kernel's instruction mix sustains. 1.0 models the
    /// paper's idealized formulas; ~0.62 reproduces the measured Hopper
    /// MMA efficiency of §5.6.2; baselines that run on CUDA cores or
    /// generic pipelines use lower values.
    pub mma_efficiency: f64,
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig {
            mode: CostMode::Serial,
            theta_r: 1.0,
            theta_w: 1.0,
            mma_efficiency: 1.0,
        }
    }
}

impl CostConfig {
    pub fn overlap() -> Self {
        CostConfig {
            mode: CostMode::Overlap,
            ..Default::default()
        }
    }

    /// Scale the sustained MMA rate (see `mma_efficiency`).
    pub fn with_mma_efficiency(mut self, eff: f64) -> Self {
        assert!(eff > 0.0 && eff <= 1.0, "efficiency must be in (0, 1]");
        self.mma_efficiency = eff;
        self
    }
}

/// Raw per-phase resource tallies (filled by the engine).
#[derive(Debug, Clone, Default)]
pub struct PhaseTally {
    /// Bytes stored to shared memory by all warps this phase.
    pub smem_bytes_written: u64,
    /// Bytes loaded from shared memory by all warps this phase.
    pub smem_bytes_read: u64,
    /// Whether any warp performed a shared/meta *load* (pays `L_sm`).
    pub has_smem_load: bool,
    /// Tensor-core flops charged, by input precision (padded to MMA shape).
    pub flops_by_prec: BTreeMap<&'static str, (Precision, u64)>,
    /// Largest single-warp flop total this phase, by precision. A warp
    /// feeds one tensor core, so a phase can never finish faster than
    /// its busiest warp's MMAs on one core — this is what makes blocks
    /// with fewer warps than tensor cores slower (Fig 9).
    pub max_warp_flops: BTreeMap<&'static str, u64>,
    /// Global-memory bytes moved.
    pub gmem_bytes: u64,
    /// Whether any warp performed a global *load* (pays `L_gm`).
    pub has_gmem_load: bool,
    /// Count of intra-warp register copies (each charged `reg_latency`).
    pub reg_copies: u64,
}

impl PhaseTally {
    pub fn add_flops(&mut self, prec: Precision, flops: u64) {
        let e = self.flops_by_prec.entry(prec.label()).or_insert((prec, 0));
        e.1 += flops;
    }

    /// Record one warp's per-phase flop total for the busiest-warp bound.
    pub fn note_warp_flops(&mut self, prec: Precision, warp_total: u64) {
        let e = self.max_warp_flops.entry(prec.label()).or_insert(0);
        *e = (*e).max(warp_total);
    }

    pub fn total_flops(&self) -> u64 {
        self.flops_by_prec.values().map(|&(_, f)| f).sum()
    }
}

/// Cycle breakdown of one phase (or totals over all phases).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Shared-memory communication cycles (latency + bandwidth).
    pub comm: f64,
    /// Tensor-core computation cycles.
    pub compute: f64,
    /// Global-memory cycles.
    pub global: f64,
    /// Intra-warp register-copy cycles (the paper disregards these; they
    /// are tracked so the assumption can be checked).
    pub reg: f64,
}

impl PhaseCost {
    /// Cycles of this phase under `mode`.
    pub fn cycles(&self, mode: CostMode) -> f64 {
        match mode {
            CostMode::Serial => self.comm + self.compute + self.global + self.reg,
            CostMode::Overlap => self.comm.max(self.compute) + self.global + self.reg,
        }
    }

    pub fn accumulate(&mut self, other: &PhaseCost) {
        self.comm += other.comm;
        self.compute += other.compute;
        self.global += other.global;
        self.reg += other.reg;
    }
}

/// Convert a phase tally into cycles on `device`.
pub fn phase_cost(
    device: &DeviceSpec,
    cfg: &CostConfig,
    tally: &PhaseTally,
) -> Result<PhaseCost, SimError> {
    let b_sm = device.smem_bytes_per_cycle();
    let mut comm = 0.0;
    if tally.has_smem_load {
        comm += device.smem_latency as f64;
    }
    comm += tally.smem_bytes_written as f64 / (cfg.theta_w * b_sm);
    comm += tally.smem_bytes_read as f64 / (cfg.theta_r * b_sm);

    let mut compute = 0.0;
    for (label, &(prec, flops)) in &tally.flops_by_prec {
        let sm_ops =
            device
                .sm_ops_per_cycle(prec)
                .ok_or_else(|| SimError::UnsupportedPrecision {
                    device: device.name.to_string(),
                    precision: prec.label().to_string(),
                })?;
        let o_tc = sm_ops / f64::from(device.tensor_cores_per_sm);
        // All warps spread over n_tc tensor cores, but no faster than the
        // busiest warp on its single core.
        let spread = flops as f64 / sm_ops;
        let busiest = tally.max_warp_flops.get(label).copied().unwrap_or(0) as f64 / o_tc;
        compute += spread.max(busiest) / cfg.mma_efficiency;
    }

    let mut global = 0.0;
    if tally.has_gmem_load {
        global += device.gmem_latency as f64;
    }
    global += tally.gmem_bytes as f64 / device.gmem_bytes_per_cycle;

    let reg = tally.reg_copies as f64 * device.reg_latency as f64;

    Ok(PhaseCost {
        comm,
        compute,
        global,
        reg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::gh200;

    #[test]
    fn paper_1d_worked_example() {
        // §4.3: p=2 warps, 8x8 FP64, se=8, L_sm=22, B_sm=128, θ=1.
        // Stage communication: write 256 B (one warp's B half: 4x8x8),
        // read 256 B (one other warp) -> T_cm = 22 + 2 + 2 = 26 cycles.
        let dev = gh200();
        let cfg = CostConfig::default();
        let mut t = PhaseTally {
            has_smem_load: true,
            smem_bytes_written: 256,
            smem_bytes_read: 256,
            ..Default::default()
        };
        // No compute in this check.
        t.reg_copies = 0;
        let c = phase_cost(&dev, &cfg, &t).unwrap();
        assert!((c.comm - 26.0).abs() < 1e-9, "comm = {}", c.comm);
    }

    #[test]
    fn store_only_phase_pays_no_latency() {
        let dev = gh200();
        let t = PhaseTally {
            smem_bytes_written: 128,
            ..Default::default()
        };
        let c = phase_cost(&dev, &CostConfig::default(), &t).unwrap();
        assert_eq!(c.comm, 1.0); // 128 B / 128 B-per-cycle, no L_sm
    }

    #[test]
    fn bank_conflict_factors_scale_bandwidth() {
        let dev = gh200();
        let cfg = CostConfig {
            theta_r: 0.5,
            theta_w: 0.25,
            ..Default::default()
        };
        let t = PhaseTally {
            smem_bytes_written: 128,
            smem_bytes_read: 128,
            has_smem_load: true,
            ..Default::default()
        };
        let c = phase_cost(&dev, &cfg, &t).unwrap();
        // 22 + 128/(0.25*128) + 128/(0.5*128) = 22 + 4 + 2.
        assert!((c.comm - 28.0).abs() < 1e-9);
    }

    #[test]
    fn compute_contends_for_all_tensor_cores() {
        let dev = gh200();
        let mut t = PhaseTally::default();
        t.add_flops(Precision::Fp64, 1_000_000);
        let c = phase_cost(&dev, &CostConfig::default(), &t).unwrap();
        let sm_ops = dev.sm_ops_per_cycle(Precision::Fp64).unwrap();
        assert!((c.compute - 1_000_000.0 / sm_ops).abs() < 1e-6);
    }

    #[test]
    fn unsupported_precision_is_an_error() {
        let dev = crate::device::rtx5090();
        let mut t = PhaseTally::default();
        t.add_flops(Precision::Fp64, 100);
        assert!(matches!(
            phase_cost(&dev, &CostConfig::default(), &t),
            Err(SimError::UnsupportedPrecision { .. })
        ));
    }

    #[test]
    fn single_warp_bounded_by_one_tensor_core() {
        let dev = gh200();
        let mut t = PhaseTally::default();
        t.add_flops(Precision::Fp16, 100_000);
        t.note_warp_flops(Precision::Fp16, 100_000); // one warp did it all
        let c = phase_cost(&dev, &CostConfig::default(), &t).unwrap();
        let o_tc = dev.ops_per_cycle_per_tc(Precision::Fp16).unwrap();
        assert!((c.compute - 100_000.0 / o_tc).abs() < 1e-6);
        // Balanced over >= n_tc warps: 4x faster.
        let mut t4 = PhaseTally::default();
        t4.add_flops(Precision::Fp16, 100_000);
        t4.note_warp_flops(Precision::Fp16, 25_000);
        let c4 = phase_cost(&dev, &CostConfig::default(), &t4).unwrap();
        assert!((c4.compute * 4.0 - c.compute).abs() < 1e-6);
    }

    #[test]
    fn mma_efficiency_scales_compute() {
        let dev = gh200();
        let mut t = PhaseTally::default();
        t.add_flops(Precision::Fp16, 100_000);
        let full = phase_cost(&dev, &CostConfig::default(), &t).unwrap();
        let half = phase_cost(&dev, &CostConfig::default().with_mma_efficiency(0.5), &t).unwrap();
        assert!((half.compute - 2.0 * full.compute).abs() < 1e-9);
    }

    #[test]
    fn overlap_mode_takes_max() {
        let pc = PhaseCost {
            comm: 10.0,
            compute: 4.0,
            global: 1.0,
            reg: 0.5,
        };
        assert_eq!(pc.cycles(CostMode::Serial), 15.5);
        assert_eq!(pc.cycles(CostMode::Overlap), 11.5);
    }

    #[test]
    fn mixed_precision_flops_accumulate_separately() {
        let mut t = PhaseTally::default();
        t.add_flops(Precision::Fp16, 100);
        t.add_flops(Precision::Fp16, 50);
        t.add_flops(Precision::Fp64, 10);
        assert_eq!(t.total_flops(), 160);
        assert_eq!(t.flops_by_prec.len(), 2);
    }
}
