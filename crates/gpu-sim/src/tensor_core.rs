//! Tensor-core (matrix unit) model: the instruction shapes of Table 4 and
//! the functional fragment multiply-accumulate.
//!
//! A tensor-core instruction multiplies an `m×k` fragment by a `k×n`
//! fragment, accumulating into `m×n`. A warp-level GEMM on fragments is
//! decomposed into `⌈M/m⌉·⌈N/n⌉·⌈K/k⌉` such instructions; the *padded*
//! instruction count is what the cycle model charges, reproducing the
//! hardware fragmentation the paper minimizes by aligning k-slices to the
//! MMA granularity (§4.7).

use crate::device::{DeviceSpec, Vendor};
use crate::precision::{fma_acc, Precision};
use serde::{Deserialize, Serialize};

/// One MMA instruction shape (`mMnNkK` in PTX naming).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MmaShape {
    pub m: usize,
    pub n: usize,
    pub k: usize,
}

impl MmaShape {
    pub const fn new(m: usize, n: usize, k: usize) -> Self {
        MmaShape { m, n, k }
    }

    /// Floating-point operations of one instruction (multiply + add).
    #[inline]
    pub const fn flops(&self) -> u64 {
        (2 * self.m * self.n * self.k) as u64
    }

    /// Number of instructions needed for an `M×K · K×N` fragment GEMM,
    /// padding each dimension up to the instruction granularity.
    pub fn instructions_for(&self, m: usize, n: usize, k: usize) -> u64 {
        let ceil = |x: usize, d: usize| x.div_ceil(d) as u64;
        ceil(m, self.m) * ceil(n, self.n) * ceil(k, self.k)
    }

    /// Padded flops charged for an `M×K · K×N` fragment GEMM.
    pub fn padded_flops(&self, m: usize, n: usize, k: usize) -> u64 {
        self.instructions_for(m, n, k) * self.flops()
    }

    /// PTX-style label, e.g. `m16n8k16`.
    pub fn label(&self) -> String {
        format!("m{}n{}k{}", self.m, self.n, self.k)
    }
}

/// Native MMA instruction shape for a vendor/precision pair (Table 4,
/// completed with the published shapes for TF32 and FP8 on NVIDIA).
///
/// Returns `None` where the device has no matrix instruction at that
/// precision (e.g. FP64 anywhere but NVIDIA data-center parts).
pub fn native_shape(vendor: Vendor, prec: Precision) -> Option<MmaShape> {
    match (vendor, prec) {
        (Vendor::Nvidia, Precision::Fp64) => Some(MmaShape::new(16, 8, 8)),
        (Vendor::Nvidia, Precision::Fp16 | Precision::Bf16) => Some(MmaShape::new(16, 8, 16)),
        (Vendor::Nvidia, Precision::Tf32 | Precision::Fp32) => Some(MmaShape::new(16, 8, 8)),
        (Vendor::Nvidia, Precision::Fp8E4M3) => Some(MmaShape::new(16, 8, 32)),
        (Vendor::Amd, Precision::Fp16 | Precision::Bf16) => Some(MmaShape::new(16, 16, 16)),
        (Vendor::Amd, _) => None,
        (Vendor::Intel, Precision::Fp16 | Precision::Bf16) => Some(MmaShape::new(16, 16, 16)),
        (Vendor::Intel, _) => None,
    }
}

/// Shape lookup that also validates the device supports the precision.
pub fn shape_for(device: &DeviceSpec, prec: Precision) -> Option<MmaShape> {
    device.peak_tflops(prec)?;
    native_shape(device.vendor, prec)
}

/// Functional fragment MMA: `d[M×N] += a[M×K] · b[K×N]`.
///
/// Inputs are quantized to `in_prec` per element (as the hardware does on
/// fragment load) and products are accumulated at `in_prec.accumulator()`.
/// Slices are row-major. Returns the flop count actually *charged* (padded
/// to instruction granularity) alongside performing the exact update.
#[allow(clippy::too_many_arguments)]
pub fn mma_fragment(
    shape: MmaShape,
    in_prec: Precision,
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    b: &[f64],
    d: &mut [f64],
) -> u64 {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(d.len(), m * n);
    let acc = in_prec.accumulator();
    for i in 0..m {
        for j in 0..n {
            let mut sum = d[i * n + j];
            for l in 0..k {
                let av = in_prec.round(a[i * k + l]);
                let bv = in_prec.round(b[l * n + j]);
                sum = fma_acc(acc, av, bv, sum);
            }
            d[i * n + j] = sum;
        }
    }
    shape.padded_flops(m, n, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device;

    #[test]
    fn shape_flops() {
        let s = MmaShape::new(16, 8, 16);
        assert_eq!(s.flops(), 4096);
        assert_eq!(s.label(), "m16n8k16");
    }

    #[test]
    fn instruction_count_pads_up() {
        let s = MmaShape::new(16, 8, 16);
        // Exact fit.
        assert_eq!(s.instructions_for(32, 16, 32), 2 * 2 * 2);
        // One element still costs one instruction.
        assert_eq!(s.instructions_for(1, 1, 1), 1);
        // 17 rows need two m-tiles.
        assert_eq!(s.instructions_for(17, 8, 16), 2);
    }

    #[test]
    fn padded_flops_at_least_exact() {
        let s = MmaShape::new(16, 8, 8);
        for &(m, n, k) in &[(16, 8, 8), (20, 9, 5), (1, 1, 1), (64, 64, 64)] {
            assert!(s.padded_flops(m, n, k) >= (2 * m * n * k) as u64);
        }
    }

    #[test]
    fn table4_shapes() {
        assert_eq!(
            native_shape(Vendor::Nvidia, Precision::Fp64),
            Some(MmaShape::new(16, 8, 8))
        );
        assert_eq!(
            native_shape(Vendor::Nvidia, Precision::Fp16),
            Some(MmaShape::new(16, 8, 16))
        );
        assert_eq!(
            native_shape(Vendor::Amd, Precision::Fp16),
            Some(MmaShape::new(16, 16, 16))
        );
        assert_eq!(
            native_shape(Vendor::Intel, Precision::Fp16),
            Some(MmaShape::new(16, 16, 16))
        );
        assert_eq!(native_shape(Vendor::Amd, Precision::Fp64), None);
    }

    #[test]
    fn shape_for_rejects_unsupported_precision() {
        assert!(shape_for(&device::rtx5090(), Precision::Fp64).is_none());
        assert!(shape_for(&device::gh200(), Precision::Fp64).is_some());
    }

    #[test]
    fn mma_fragment_matches_reference_fp64() {
        let (m, n, k) = (4, 3, 5);
        let a: Vec<f64> = (0..m * k).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..k * n).map(|i| (i as f64).sin()).collect();
        let mut d = vec![0.0; m * n];
        mma_fragment(
            MmaShape::new(16, 8, 8),
            Precision::Fp64,
            m,
            n,
            k,
            &a,
            &b,
            &mut d,
        );
        for i in 0..m {
            for j in 0..n {
                let mut want = 0.0f64;
                for l in 0..k {
                    want = a[i * k + l].mul_add(b[l * n + j], want);
                }
                assert!((d[i * n + j] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mma_fragment_quantizes_fp16_inputs() {
        // 1 + 2^-12 is below FP16 resolution: rounds to 1.0 before multiply.
        let a = vec![1.0 + (2.0f64).powi(-12)];
        let b = vec![1.0];
        let mut d = vec![0.0];
        mma_fragment(
            MmaShape::new(16, 8, 16),
            Precision::Fp16,
            1,
            1,
            1,
            &a,
            &b,
            &mut d,
        );
        assert_eq!(d[0], 1.0);
    }

    #[test]
    fn mma_fragment_accumulates_into_d() {
        let a = vec![2.0];
        let b = vec![3.0];
        let mut d = vec![10.0];
        mma_fragment(
            MmaShape::new(16, 8, 8),
            Precision::Fp64,
            1,
            1,
            1,
            &a,
            &b,
            &mut d,
        );
        assert_eq!(d[0], 16.0);
    }

    #[test]
    fn mma_fragment_charges_padded_flops() {
        let a = vec![1.0];
        let b = vec![1.0];
        let mut d = vec![0.0];
        let flops = mma_fragment(
            MmaShape::new(16, 8, 16),
            Precision::Fp16,
            1,
            1,
            1,
            &a,
            &b,
            &mut d,
        );
        assert_eq!(flops, 4096); // one full instruction despite 1x1x1 work
    }
}
