//! Warp-level SPMD programs.
//!
//! A [`WarpProgram`] is the resolved op sequence of one warp — branches on
//! warp id (Algorithms 1–3, lines 5/8/12/14) are resolved at build time, so
//! each warp carries only the ops it actually executes. Barriers must line
//! up across the block's warps; the engine checks this, mirroring the CUDA
//! rule that `__syncthreads()` must be reached by every thread.

use crate::fragment::{FragDecl, FragId};
use crate::memory::global::BufferId;
use crate::precision::Precision;

/// One operation of a warp program.
#[derive(Debug, Clone)]
pub enum Op {
    /// Load a `dst`-shaped window of `buf` at `(row0, col0)` into registers
    /// (`GMem2Reg` in the paper's pseudocode).
    GlobalLoad {
        dst: FragId,
        buf: BufferId,
        row0: usize,
        col0: usize,
    },
    /// Store a fragment to global memory (`Reg2GMem`), optionally
    /// accumulating (`C += Ci`, Algorithm 3 line 19).
    GlobalStore {
        src: FragId,
        buf: BufferId,
        row0: usize,
        col0: usize,
        accumulate: bool,
    },
    /// Copy a fragment to shared memory at byte `addr` (`Reg2SMem`).
    SharedStore { src: FragId, addr: usize },
    /// Fill a fragment from shared memory at byte `addr` (`SMem2Reg`).
    SharedLoad { dst: FragId, addr: usize },
    /// Intra-warp register copy (`Reg2Reg`) — the sender keeps its own
    /// copy instead of re-reading shared memory (§4.3).
    RegCopy { dst: FragId, src: FragId },
    /// Zero-initialise an accumulator fragment.
    ZeroAcc { frag: FragId },
    /// Tensor-core GEMM: `d += a[:, a_cols] · b[b_rows, :]`.
    /// `a_cols`/`b_rows` select a k-slice; `None` uses the full extent.
    /// The selected extents must agree.
    Mma {
        d: FragId,
        a: FragId,
        b: FragId,
        a_cols: Option<(usize, usize)>,
        b_rows: Option<(usize, usize)>,
    },
    /// Store `bytes` of metadata (sparse index arrays RowPtr/ColBlkIdx,
    /// §4.6) to shared memory — traffic-only, no fragment content.
    MetaStore { addr: usize, bytes: usize },
    /// Load `bytes` of metadata from shared memory — traffic-only.
    MetaLoad { addr: usize, bytes: usize },
    /// Scale a fragment elementwise by a scalar (CUDA-core epilogue op:
    /// `frag *= factor`, rounded at the fragment's precision).
    Scale { frag: FragId, factor: f64 },
    /// Elementwise add another fragment into `dst` (CUDA-core epilogue
    /// op: `dst += src`; shapes must match).
    AddAssign { dst: FragId, src: FragId },
    /// Apply a fused epilogue function to a fragment in registers
    /// (CUDA-core op; results rounded at the fragment's precision).
    /// `Softmax` is row-wise and therefore requires the fragment to span
    /// full logical rows of the output tile.
    Unary { frag: FragId, func: UnaryFunc },
    /// Broadcast-add a `1×cols` row fragment into every row of `dst`
    /// (fused bias epilogue: `dst[r][c] += src[0][c]`, rounded at the
    /// destination's precision).
    AddRowBroadcast { dst: FragId, src: FragId },
    /// Block-wide `__syncthreads()`.
    Barrier,
}

/// The fused epilogue functions [`Op::Unary`] can apply in registers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnaryFunc {
    /// `max(x, 0)` elementwise.
    Relu,
    /// tanh-approximated GELU, computed in f64 and rounded once at the
    /// fragment's precision.
    Gelu,
    /// Row-wise `softmax(scale · x)` (attention-style), computed
    /// max-subtracted in f64 and rounded once at the fragment's
    /// precision.
    Softmax { scale: f64 },
}

/// The tanh approximation of GELU used by [`UnaryFunc::Gelu`]:
/// `0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))`.
#[inline]
pub fn gelu(x: f64) -> f64 {
    const SQRT_2_OVER_PI: f64 = 0.797_884_560_802_865_4;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// The resolved op list and fragment table of one warp.
#[derive(Debug, Clone, Default)]
pub struct WarpProgram {
    pub frags: Vec<FragDecl>,
    pub ops: Vec<Op>,
}

impl WarpProgram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a fragment; returns its id.
    pub fn frag(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        precision: Precision,
    ) -> FragId {
        self.frags.push(FragDecl::new(name, rows, cols, precision));
        self.frags.len() - 1
    }

    pub fn global_load(&mut self, dst: FragId, buf: BufferId, row0: usize, col0: usize) {
        self.ops.push(Op::GlobalLoad {
            dst,
            buf,
            row0,
            col0,
        });
    }

    pub fn global_store(&mut self, src: FragId, buf: BufferId, row0: usize, col0: usize) {
        self.ops.push(Op::GlobalStore {
            src,
            buf,
            row0,
            col0,
            accumulate: false,
        });
    }

    pub fn global_accumulate(&mut self, src: FragId, buf: BufferId, row0: usize, col0: usize) {
        self.ops.push(Op::GlobalStore {
            src,
            buf,
            row0,
            col0,
            accumulate: true,
        });
    }

    pub fn shared_store(&mut self, src: FragId, addr: usize) {
        self.ops.push(Op::SharedStore { src, addr });
    }

    pub fn shared_load(&mut self, dst: FragId, addr: usize) {
        self.ops.push(Op::SharedLoad { dst, addr });
    }

    pub fn reg_copy(&mut self, dst: FragId, src: FragId) {
        self.ops.push(Op::RegCopy { dst, src });
    }

    pub fn zero_acc(&mut self, frag: FragId) {
        self.ops.push(Op::ZeroAcc { frag });
    }

    /// Full-fragment MMA: `d += a · b`.
    pub fn mma(&mut self, d: FragId, a: FragId, b: FragId) {
        self.ops.push(Op::Mma {
            d,
            a,
            b,
            a_cols: None,
            b_rows: None,
        });
    }

    /// k-sliced MMA over columns `[col0, col0+ncols)` of `a`
    /// (Algorithm 1 line 12: `Ai[:][z·k/p : (z+1)·k/p] × BRecv`).
    pub fn mma_a_cols(&mut self, d: FragId, a: FragId, b: FragId, col0: usize, ncols: usize) {
        self.ops.push(Op::Mma {
            d,
            a,
            b,
            a_cols: Some((col0, ncols)),
            b_rows: None,
        });
    }

    /// k-sliced MMA over rows `[row0, row0+nrows)` of `b`.
    pub fn mma_b_rows(&mut self, d: FragId, a: FragId, b: FragId, row0: usize, nrows: usize) {
        self.ops.push(Op::Mma {
            d,
            a,
            b,
            a_cols: None,
            b_rows: Some((row0, nrows)),
        });
    }

    pub fn scale(&mut self, frag: FragId, factor: f64) {
        self.ops.push(Op::Scale { frag, factor });
    }

    pub fn add_assign(&mut self, dst: FragId, src: FragId) {
        self.ops.push(Op::AddAssign { dst, src });
    }

    pub fn unary(&mut self, frag: FragId, func: UnaryFunc) {
        self.ops.push(Op::Unary { frag, func });
    }

    pub fn add_row_broadcast(&mut self, dst: FragId, src: FragId) {
        self.ops.push(Op::AddRowBroadcast { dst, src });
    }

    pub fn meta_store(&mut self, addr: usize, bytes: usize) {
        self.ops.push(Op::MetaStore { addr, bytes });
    }

    pub fn meta_load(&mut self, addr: usize, bytes: usize) {
        self.ops.push(Op::MetaLoad { addr, bytes });
    }

    pub fn barrier(&mut self) {
        self.ops.push(Op::Barrier);
    }

    /// Number of barrier ops (phases = barriers + 1).
    pub fn barrier_count(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, Op::Barrier)).count()
    }
}

/// A thread-block kernel: one program per warp.
#[derive(Debug, Clone, Default)]
pub struct BlockKernel {
    pub warps: Vec<WarpProgram>,
}

impl BlockKernel {
    pub fn new(warps: Vec<WarpProgram>) -> Self {
        BlockKernel { warps }
    }

    /// Build a kernel of `p` warps in SPMD style: `f(warp_id, &mut prog)`.
    pub fn spmd(p: usize, mut f: impl FnMut(usize, &mut WarpProgram)) -> Self {
        let warps = (0..p)
            .map(|i| {
                let mut w = WarpProgram::new();
                f(i, &mut w);
                w
            })
            .collect();
        BlockKernel { warps }
    }

    pub fn num_warps(&self) -> usize {
        self.warps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_ops() {
        let mut w = WarpProgram::new();
        let a = w.frag("A", 8, 8, Precision::Fp16);
        let b = w.frag("B", 8, 8, Precision::Fp16);
        let c = w.frag("C", 8, 8, Precision::Fp16);
        w.zero_acc(c);
        w.shared_store(a, 0);
        w.barrier();
        w.shared_load(b, 0);
        w.barrier();
        w.mma(c, a, b);
        assert_eq!(w.frags.len(), 3);
        assert_eq!(w.ops.len(), 6);
        assert_eq!(w.barrier_count(), 2);
    }

    #[test]
    fn spmd_builds_per_warp() {
        let k = BlockKernel::spmd(4, |i, w| {
            let f = w.frag(format!("f{i}"), 1, 1, Precision::Fp32);
            if i == 0 {
                w.shared_store(f, 0);
            }
            w.barrier();
        });
        assert_eq!(k.num_warps(), 4);
        assert_eq!(k.warps[0].ops.len(), 2);
        assert_eq!(k.warps[1].ops.len(), 1);
    }
}
