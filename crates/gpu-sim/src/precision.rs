//! Numeric precision emulation for tensor-core arithmetic.
//!
//! The simulator stores every value as an `f64` and *quantizes* it to the
//! precision a real tensor core would see on each load, store, and MMA
//! input. This reproduces the numerical behaviour of FP64 / TF32 / FP16 /
//! FP8 (E4M3) tensor-core pipelines without per-bit storage.
//!
//! Accumulation happens at the precision hardware accumulators use:
//! FP64 for FP64 inputs, FP32 for everything else (the NVIDIA `mma`
//! shapes used by the paper — Table 4 — accumulate FP16/TF32/FP8 products
//! in FP32).

use serde::{Deserialize, Serialize};

/// Element precision of a matrix operand as seen by the tensor core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE-754 binary64. GH200 tensor cores support it natively.
    Fp64,
    /// IEEE-754 binary32 (used for accumulators and as a CUDA-core type).
    Fp32,
    /// NVIDIA TF32: FP32 range (8-bit exponent) with a 10-bit mantissa.
    Tf32,
    /// IEEE-754 binary16.
    Fp16,
    /// bfloat16: FP32 range (8-bit exponent) with a 7-bit mantissa —
    /// an extension beyond the paper's evaluated set, supported by every
    /// modern tensor pipeline.
    Bf16,
    /// OCP FP8 E4M3 (4-bit exponent, 3-bit mantissa, max finite 448).
    Fp8E4M3,
}

impl Precision {
    /// Size of one element in bytes (`s_e` in the paper's notation).
    ///
    /// TF32 occupies a full 32-bit register lane even though only 19 bits
    /// carry information, exactly as on NVIDIA hardware.
    #[inline]
    pub const fn size_bytes(self) -> usize {
        match self {
            Precision::Fp64 => 8,
            Precision::Fp32 | Precision::Tf32 => 4,
            Precision::Fp16 | Precision::Bf16 => 2,
            Precision::Fp8E4M3 => 1,
        }
    }

    /// The precision used to accumulate products of this input precision.
    #[inline]
    pub const fn accumulator(self) -> Precision {
        match self {
            Precision::Fp64 => Precision::Fp64,
            _ => Precision::Fp32,
        }
    }

    /// Quantize `x` to this precision (round to nearest even), returning
    /// the value as an `f64`.
    #[inline]
    pub fn round(self, x: f64) -> f64 {
        match self {
            Precision::Fp64 => x,
            Precision::Fp32 => x as f32 as f64,
            Precision::Tf32 => round_tf32(x),
            Precision::Fp16 => f64::from(half::f16::from_f64(x)),
            Precision::Bf16 => f64::from(half::bf16::from_f64(x)),
            Precision::Fp8E4M3 => round_fp8_e4m3(x),
        }
    }

    /// Largest finite representable magnitude.
    pub fn max_finite(self) -> f64 {
        match self {
            Precision::Fp64 => f64::MAX,
            Precision::Fp32 => f64::from(f32::MAX),
            Precision::Tf32 => round_tf32(f64::from(f32::MAX)),
            Precision::Fp16 => 65504.0,
            Precision::Bf16 => f64::from(half::bf16::MAX),
            Precision::Fp8E4M3 => 448.0,
        }
    }

    /// Unit roundoff (half ULP at 1.0): bound on the relative error a
    /// single quantization introduces. Used by tests to budget error.
    pub fn unit_roundoff(self) -> f64 {
        match self {
            Precision::Fp64 => f64::EPSILON / 2.0,
            Precision::Fp32 => f64::from(f32::EPSILON) / 2.0,
            Precision::Tf32 => (2.0f64).powi(-11),
            Precision::Fp16 => (2.0f64).powi(-11),
            Precision::Bf16 => (2.0f64).powi(-8),
            Precision::Fp8E4M3 => (2.0f64).powi(-4),
        }
    }

    /// Human-readable label used by the benchmark harness.
    pub fn label(self) -> &'static str {
        match self {
            Precision::Fp64 => "FP64",
            Precision::Fp32 => "FP32",
            Precision::Tf32 => "TF32",
            Precision::Fp16 => "FP16",
            Precision::Bf16 => "BF16",
            Precision::Fp8E4M3 => "FP8",
        }
    }

    /// All precisions the paper evaluates, in its reporting order.
    pub const ALL_EVALUATED: [Precision; 4] = [
        Precision::Fp64,
        Precision::Tf32,
        Precision::Fp16,
        Precision::Fp8E4M3,
    ];
}

/// Round an `f64` to TF32: FP32 exponent range, 10-bit mantissa,
/// round-to-nearest-even on the dropped 13 mantissa bits.
fn round_tf32(x: f64) -> f64 {
    let f = x as f32;
    if !f.is_finite() {
        return f64::from(f);
    }
    let bits = f.to_bits();
    // Keep 10 mantissa bits out of 23: round at bit 13.
    const DROP: u32 = 13;
    let keep_mask: u32 = !((1u32 << DROP) - 1);
    let truncated = bits & keep_mask;
    let remainder = bits & !keep_mask;
    let halfway = 1u32 << (DROP - 1);
    let rounded = if remainder > halfway || (remainder == halfway && (truncated >> DROP) & 1 == 1) {
        // Round up; mantissa overflow naturally carries into the exponent,
        // which is the correct IEEE behaviour (e.g. 1.999.. -> 2.0).
        truncated.wrapping_add(1 << DROP)
    } else {
        truncated
    };
    f64::from(f32::from_bits(rounded))
}

/// Round an `f64` to FP8 E4M3 (OCP spec: bias 7, max finite 448, no inf;
/// NaN maps to NaN; overflow saturates to the max finite value, which is
/// what NVIDIA hardware conversion instructions do by default).
fn round_fp8_e4m3(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let sign = if x.is_sign_negative() { -1.0 } else { 1.0 };
    let a = x.abs();
    if a == 0.0 {
        return 0.0 * sign;
    }
    const MAX: f64 = 448.0;
    // Smallest normal 2^-6; subnormal step 2^-9.
    const MIN_NORMAL: f64 = 0.015625;
    const SUB_STEP: f64 = 0.001953125; // 2^-9
    if a >= MAX {
        // Saturating conversion; values beyond max+half-step would round
        // to NaN under strict OCP rules, but saturation matches cvt.satfinite.
        return sign * MAX;
    }
    if a < MIN_NORMAL {
        // Subnormal: quantize to multiples of 2^-9, ties to even.
        let q = a / SUB_STEP;
        let r = round_ties_even(q);
        return sign * r * SUB_STEP;
    }
    // Normal: 3 mantissa bits.
    let exp = a.log2().floor();
    let mut e = exp as i32;
    let mut scale = (2.0f64).powi(e);
    // Guard against log2 edge cases at powers of two.
    if a < scale {
        e -= 1;
        scale = (2.0f64).powi(e);
    } else if a >= 2.0 * scale {
        e += 1;
        scale = (2.0f64).powi(e);
    }
    let frac = a / scale; // in [1, 2)
    let q = round_ties_even((frac - 1.0) * 8.0);
    let v = scale * (1.0 + q / 8.0);
    if v > MAX {
        sign * MAX
    } else {
        sign * v
    }
}

#[inline]
fn round_ties_even(x: f64) -> f64 {
    let floor = x.floor();
    let diff = x - floor;
    match diff.partial_cmp(&0.5).expect("finite") {
        std::cmp::Ordering::Greater => floor + 1.0,
        std::cmp::Ordering::Less => floor,
        std::cmp::Ordering::Equal if (floor as i64) % 2 == 0 => floor,
        std::cmp::Ordering::Equal => floor + 1.0,
    }
}

/// Fused multiply-add at a given accumulator precision:
/// `round_acc(a*b + c)` with the product formed exactly in f64.
///
/// This mirrors tensor-core dot-product units, which keep products at
/// higher precision and round once per accumulation step.
#[inline]
pub fn fma_acc(acc_prec: Precision, a: f64, b: f64, c: f64) -> f64 {
    acc_prec.round(a.mul_add(b, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_hardware() {
        assert_eq!(Precision::Fp64.size_bytes(), 8);
        assert_eq!(Precision::Fp32.size_bytes(), 4);
        assert_eq!(Precision::Tf32.size_bytes(), 4);
        assert_eq!(Precision::Fp16.size_bytes(), 2);
        assert_eq!(Precision::Fp8E4M3.size_bytes(), 1);
    }

    #[test]
    fn fp64_round_is_identity() {
        for &x in &[0.0, 1.0, -3.25, 1e300, f64::MIN_POSITIVE] {
            assert_eq!(Precision::Fp64.round(x), x);
        }
    }

    #[test]
    fn fp16_rounds_via_half() {
        assert_eq!(Precision::Fp16.round(1.0), 1.0);
        assert_eq!(Precision::Fp16.round(65504.0), 65504.0);
        // 1 + 2^-11 is exactly half-way between 1.0 and the next f16; RNE -> 1.0.
        assert_eq!(Precision::Fp16.round(1.0 + (2.0f64).powi(-11)), 1.0);
        // Just above half-way rounds up to 1 + 2^-10.
        let up = Precision::Fp16.round(1.0 + (2.0f64).powi(-11) * 1.01);
        assert_eq!(up, 1.0 + (2.0f64).powi(-10));
        assert!(Precision::Fp16.round(1e10).is_infinite());
    }

    #[test]
    fn tf32_keeps_ten_mantissa_bits() {
        // 1 + 2^-10 is representable.
        let x = 1.0 + (2.0f64).powi(-10);
        assert_eq!(Precision::Tf32.round(x), x);
        // 1 + 2^-11 is exactly halfway; ties-to-even keeps 1.0.
        assert_eq!(Precision::Tf32.round(1.0 + (2.0f64).powi(-11)), 1.0);
        // 1 + 3*2^-11 is halfway, rounds to even = 1 + 2^-9... check monotone.
        let y = Precision::Tf32.round(1.0 + 3.0 * (2.0f64).powi(-11));
        assert_eq!(y, 1.0 + (2.0f64).powi(-9));
        // TF32 retains FP32 range.
        assert!(Precision::Tf32.round(1e38).is_finite());
    }

    #[test]
    fn tf32_mantissa_rounding_carries_into_exponent() {
        // Just below 2.0: must round UP to exactly 2.0, not a garbled value.
        let x = 2.0 - (2.0f64).powi(-12);
        assert_eq!(Precision::Tf32.round(x), 2.0);
    }

    #[test]
    fn fp8_e4m3_representable_values() {
        for &x in &[0.0, 1.0, -1.0, 448.0, -448.0, 0.5, 1.75, 240.0] {
            assert_eq!(Precision::Fp8E4M3.round(x), x, "x={x}");
        }
    }

    #[test]
    fn fp8_e4m3_saturates() {
        assert_eq!(Precision::Fp8E4M3.round(1e6), 448.0);
        assert_eq!(Precision::Fp8E4M3.round(-1e6), -448.0);
    }

    #[test]
    fn fp8_e4m3_subnormals() {
        let step = 0.001953125; // 2^-9
        assert_eq!(Precision::Fp8E4M3.round(step), step);
        assert_eq!(Precision::Fp8E4M3.round(step * 1.4), step);
        assert_eq!(Precision::Fp8E4M3.round(step * 1.6), 2.0 * step);
        assert_eq!(Precision::Fp8E4M3.round(step * 0.4), 0.0);
    }

    #[test]
    fn fp8_e4m3_rounding_monotone() {
        let mut prev = -449.0;
        let mut x = -448.0;
        while x <= 448.0 {
            let r = Precision::Fp8E4M3.round(x);
            assert!(r >= prev, "non-monotone at {x}: {r} < {prev}");
            prev = r;
            x += 0.37;
        }
    }

    #[test]
    fn fp8_powers_of_two_exact() {
        // Exercise the log2 edge-case guard at exact powers of two.
        for e in -6..=8 {
            let x = (2.0f64).powi(e);
            assert_eq!(Precision::Fp8E4M3.round(x), x, "2^{e}");
        }
    }

    #[test]
    fn quantization_error_within_unit_roundoff() {
        for p in Precision::ALL_EVALUATED {
            let u = p.unit_roundoff();
            let mut x = 1.0;
            while x < p.max_finite().min(1e4) {
                let r = p.round(x);
                let rel = ((r - x) / x).abs();
                assert!(rel <= u * 1.0001, "{p:?}: x={x} r={r} rel={rel} u={u}");
                x *= 1.337;
            }
        }
    }

    #[test]
    fn bf16_keeps_fp32_range_with_coarse_mantissa() {
        // Representable: 1 + 2^-7.
        let x = 1.0 + (2.0f64).powi(-7);
        assert_eq!(Precision::Bf16.round(x), x);
        // Below resolution: rounds away.
        assert_eq!(Precision::Bf16.round(1.0 + (2.0f64).powi(-9)), 1.0);
        // FP32-range value survives (would overflow FP16).
        assert!(Precision::Bf16.round(1e20).is_finite());
        assert_eq!(Precision::Bf16.size_bytes(), 2);
        assert_eq!(Precision::Bf16.accumulator(), Precision::Fp32);
    }

    #[test]
    fn fma_accumulates_at_requested_precision() {
        // In FP32 accumulation, adding 1e-9 to 1.0 is lost; FP64 keeps it.
        let got32 = fma_acc(Precision::Fp32, 1.0, 1e-9, 1.0);
        assert_eq!(got32, 1.0);
        let got64 = fma_acc(Precision::Fp64, 1.0, 1e-9, 1.0);
        assert!(got64 > 1.0);
    }

    #[test]
    fn accumulator_map() {
        assert_eq!(Precision::Fp64.accumulator(), Precision::Fp64);
        assert_eq!(Precision::Fp16.accumulator(), Precision::Fp32);
        assert_eq!(Precision::Fp8E4M3.accumulator(), Precision::Fp32);
        assert_eq!(Precision::Tf32.accumulator(), Precision::Fp32);
    }
}
