//! Phase-stepped block executor.
//!
//! Executes a [`BlockKernel`] with full functional semantics (values
//! actually move between global memory, shared memory, and register
//! fragments; tensor cores perform real quantized arithmetic) while
//! tallying the resource use that [`crate::cost`] converts to cycles.
//!
//! Legality checks mirror the CUDA programming model:
//! * all warps must reach the same number of barriers,
//! * cross-warp shared-memory communication must be separated by a
//!   barrier (same-phase write/read overlaps are flagged as races),
//! * fragments must be written before read,
//! * register and shared-memory footprints must fit the device.

use crate::cost::{phase_cost, CostConfig, PhaseCost, PhaseTally};
use crate::device::DeviceSpec;
use crate::error::SimError;
use crate::fragment::FragValue;
use crate::memory::global::GlobalMemory;
use crate::memory::regfile::{self, LiveRange, RegisterUsage};
use crate::memory::shared::SharedMemory;
use crate::program::{BlockKernel, Op, UnaryFunc, WarpProgram};
use crate::report::ExecutionReport;
use crate::tensor_core::{mma_fragment, shape_for};
use crate::trace::{Trace, TraceEvent, TraceKind};

/// Executes block kernels on one simulated SM of a device.
pub struct Engine<'a> {
    pub device: &'a DeviceSpec,
    pub cost: CostConfig,
}

impl<'a> Engine<'a> {
    pub fn new(device: &'a DeviceSpec) -> Self {
        Engine {
            device,
            cost: CostConfig::default(),
        }
    }

    pub fn with_cost(device: &'a DeviceSpec, cost: CostConfig) -> Self {
        Engine { device, cost }
    }

    /// Register usage of each warp, independent of resource limits
    /// (used by the Fig 14 harness, which plots demand *beyond* the
    /// 255-register ceiling).
    pub fn analyze_registers(&self, kernel: &BlockKernel) -> Vec<RegisterUsage> {
        kernel
            .warps
            .iter()
            .map(|w| {
                let ranges = live_ranges(w);
                regfile::analyze(
                    &w.frags,
                    &ranges,
                    self.device.warp_size,
                    self.device.reg_width_bytes,
                    w.ops.len(),
                )
            })
            .collect()
    }

    /// Register usage under an *optimizing-compiler* model: loads are
    /// sunk to first use, accumulators materialize at their first MMA,
    /// and fragments that are only ever read through column slices
    /// (`mma_a_cols`) are allocated chunk by chunk, each chunk live only
    /// while its slices are in use. This reproduces the gap between the
    /// naive "theoretical" register demand and the compiler-measured
    /// allocation of the paper's Fig 14 ("shortening variable lifetimes
    /// and optimizing register reuse", §5.6.1).
    ///
    /// The conservative analysis ([`Self::analyze_registers`]) remains
    /// the feasibility check — KAMI does not *rely* on the compiler
    /// finding these reuses (that is what the §4.7 shared-memory
    /// fallback is for).
    pub fn analyze_registers_lazy(&self, kernel: &BlockKernel) -> Vec<u32> {
        kernel
            .warps
            .iter()
            .map(|w| lazy_register_usage(w, self.device.warp_size, self.device.reg_width_bytes))
            .collect()
    }

    /// Run the kernel to completion; returns the cycle/traffic report.
    /// Global buffers in `gmem` are mutated by `GlobalStore` ops.
    ///
    /// This is the legacy single-loop interpreter that interleaves cycle
    /// accounting with functional numerics op by op. The split pipeline
    /// ([`Self::plan`] → [`Self::cost`] → [`Self::execute`], or
    /// [`Self::run_passes`] for the one-call form) produces bit-identical
    /// results and reports; this path is kept as the differential oracle
    /// (`kami-verify`'s `ExecParity` check holds the two together).
    pub fn run(
        &self,
        kernel: &BlockKernel,
        gmem: &mut GlobalMemory,
    ) -> Result<ExecutionReport, SimError> {
        self.run_inner(kernel, gmem, None)
    }

    /// Like [`Self::run`], additionally producing a per-op
    /// [`Trace`] laid out on the simulated clock (exportable to
    /// `chrome://tracing` via [`Trace::to_chrome_json`]).
    pub fn run_traced(
        &self,
        kernel: &BlockKernel,
        gmem: &mut GlobalMemory,
    ) -> Result<(ExecutionReport, Trace), SimError> {
        let mut trace = Trace {
            device: self.device.name.to_string(),
            mode: Some(self.cost.mode),
            ..Default::default()
        };
        let report = self.run_inner(kernel, gmem, Some(&mut trace))?;
        Ok((report, trace))
    }

    fn run_inner(
        &self,
        kernel: &BlockKernel,
        gmem: &mut GlobalMemory,
        mut trace: Option<&mut Trace>,
    ) -> Result<ExecutionReport, SimError> {
        let p = kernel.num_warps();
        let max_warps = self.device.max_warps_per_block() as usize;
        if p == 0 || p > max_warps {
            return Err(SimError::BadWarpCount {
                warps: p,
                max: max_warps,
            });
        }

        // Barrier alignment.
        let expected_phases = kernel.warps[0].barrier_count() + 1;
        for (i, w) in kernel.warps.iter().enumerate() {
            let phases = w.barrier_count() + 1;
            if phases != expected_phases {
                return Err(SimError::BarrierMismatch {
                    warp: i,
                    phases,
                    expected: expected_phases,
                });
            }
        }

        // Register budget.
        let registers_per_warp = self.analyze_registers(kernel);
        for (i, usage) in registers_per_warp.iter().enumerate() {
            if usage.measured_regs > self.device.max_regs_per_thread {
                return Err(SimError::RegisterOverflow {
                    warp: i,
                    needed: usage.measured_regs,
                    limit: self.device.max_regs_per_thread,
                });
            }
        }

        // Runtime state.
        let mut smem = SharedMemory::new(self.device.smem_capacity);
        let mut frags: Vec<Vec<FragValue>> = kernel
            .warps
            .iter()
            .map(|w| w.frags.iter().cloned().map(FragValue::new).collect())
            .collect();
        // Per-warp cursor into its op list.
        let mut cursors = vec![0usize; p];

        let gmem_read0 = gmem.bytes_read();
        let gmem_written0 = gmem.bytes_written();

        let mut phase_costs: Vec<PhaseCost> = Vec::with_capacity(expected_phases);
        let mut flops_charged = 0u64;

        let mut clock = 0.0f64;
        if let Some(t) = trace.as_deref_mut() {
            t.phase_starts.push(0.0);
        }
        for phase in 0..expected_phases {
            let mut tally = PhaseTally::default();
            // (warp, byte range) pairs for race detection.
            let mut writes: Vec<(usize, (usize, usize))> = Vec::new();
            let mut reads: Vec<(usize, (usize, usize))> = Vec::new();
            // Raw per-op records for the trace: (warp, kind, amount, detail).
            let mut raw_events: Vec<(usize, TraceKind, u64, String)> = Vec::new();

            #[allow(clippy::needless_range_loop)] // warp id is semantic, not positional
            for w in 0..p {
                let prog = &kernel.warps[w];
                let mut warp_flops: std::collections::BTreeMap<crate::precision::Precision, u64> =
                    std::collections::BTreeMap::new();
                loop {
                    if cursors[w] >= prog.ops.len() {
                        break;
                    }
                    let op = prog.ops[cursors[w]].clone();
                    cursors[w] += 1;
                    if matches!(op, Op::Barrier) {
                        break;
                    }
                    let before = flops_charged;
                    let before_tally = (
                        tally.smem_bytes_written,
                        tally.smem_bytes_read,
                        tally.gmem_bytes,
                    );
                    let mma_prec = if let Op::Mma { a, .. } = op {
                        prog.frags.get(a).map(|d| d.precision)
                    } else {
                        None
                    };
                    self.exec_op(
                        w,
                        prog,
                        &op,
                        gmem,
                        &mut smem,
                        &mut frags[w],
                        &mut tally,
                        &mut writes,
                        &mut reads,
                        &mut flops_charged,
                    )?;
                    if let Some(prec) = mma_prec {
                        *warp_flops.entry(prec).or_insert(0) += flops_charged - before;
                    }
                    if trace.is_some() {
                        let (kind, detail) = describe_op(prog, &op);
                        let amount = match op {
                            Op::Mma { .. } => flops_charged - before,
                            Op::GlobalLoad { .. } | Op::GlobalStore { .. } => {
                                tally.gmem_bytes - before_tally.2
                            }
                            _ => {
                                (tally.smem_bytes_written - before_tally.0)
                                    + (tally.smem_bytes_read - before_tally.1)
                            }
                        };
                        raw_events.push((w, kind, amount, detail));
                    }
                }
                for (prec, total) in warp_flops {
                    tally.note_warp_flops(prec, total);
                }
            }

            // Same-phase cross-warp race detection.
            detect_races(&writes, &reads)?;

            let pc = phase_cost(self.device, &self.cost, &tally)?;
            if let Some(t) = trace.as_deref_mut() {
                self.layout_phase_trace(t, phase, clock, &raw_events);
            }
            clock += pc.cycles(self.cost.mode);
            if let Some(t) = trace.as_deref_mut() {
                t.phase_starts.push(clock);
            }
            phase_costs.push(pc);
        }

        let mut totals = PhaseCost::default();
        for pc in &phase_costs {
            totals.accumulate(pc);
        }
        let cycles = phase_costs.iter().map(|c| c.cycles(self.cost.mode)).sum();

        Ok(ExecutionReport {
            device_name: self.device.name.to_string(),
            warps: p,
            mode: self.cost.mode,
            phase_costs,
            totals,
            cycles,
            flops_charged,
            smem_bytes_written: smem.bytes_written(),
            smem_bytes_read: smem.bytes_read(),
            smem_extent: smem.peak_extent(),
            gmem_bytes_read: gmem.bytes_read() - gmem_read0,
            gmem_bytes_written: gmem.bytes_written() - gmem_written0,
            registers_per_warp,
        })
    }

    /// Execute one op of warp `w` with full functional semantics. Ops
    /// that touch global memory are handled here; everything else
    /// forwards to [`Self::exec_local_op`] (which the parallel executor
    /// reuses against a warp-local shared-memory view).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn exec_op(
        &self,
        w: usize,
        prog: &WarpProgram,
        op: &Op,
        gmem: &mut GlobalMemory,
        smem: &mut SharedMemory,
        warp_frags: &mut [FragValue],
        tally: &mut PhaseTally,
        writes: &mut Vec<(usize, (usize, usize))>,
        reads: &mut Vec<(usize, (usize, usize))>,
        flops_charged: &mut u64,
    ) -> Result<(), SimError> {
        match *op {
            Op::GlobalLoad {
                dst,
                buf,
                row0,
                col0,
            } => {
                let decl = frag_decl(prog, dst)?;
                let (rows, cols) = (decl.rows, decl.cols);
                let bytes = rows * cols * gmem.precision(buf).size_bytes();
                let values = gmem.read_window(buf, row0, col0, rows, cols);
                warp_frags[dst].store(&values);
                tally.gmem_bytes += bytes as u64;
                tally.has_gmem_load = true;
            }
            Op::GlobalStore {
                src,
                buf,
                row0,
                col0,
                accumulate,
            } => {
                require_init(warp_frags, src, w, prog)?;
                let (rows, cols) = {
                    let d = &warp_frags[src].decl;
                    (d.rows, d.cols)
                };
                let bytes = rows * cols * gmem.precision(buf).size_bytes();
                let data = warp_frags[src].data.clone();
                gmem.write_window(buf, row0, col0, rows, cols, &data, accumulate);
                tally.gmem_bytes += bytes as u64;
                if accumulate {
                    // RMW reads too.
                    tally.gmem_bytes += bytes as u64;
                    tally.has_gmem_load = true;
                }
            }
            _ => self.exec_local_op(
                w,
                prog,
                op,
                smem,
                warp_frags,
                tally,
                writes,
                reads,
                flops_charged,
            )?,
        }
        Ok(())
    }

    /// Execute one op that touches no global memory: shared-memory
    /// traffic, register movement, and tensor-core MMAs.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn exec_local_op(
        &self,
        w: usize,
        prog: &WarpProgram,
        op: &Op,
        smem: &mut SharedMemory,
        warp_frags: &mut [FragValue],
        tally: &mut PhaseTally,
        writes: &mut Vec<(usize, (usize, usize))>,
        reads: &mut Vec<(usize, (usize, usize))>,
        flops_charged: &mut u64,
    ) -> Result<(), SimError> {
        match *op {
            Op::SharedStore { src, addr } => {
                require_init(warp_frags, src, w, prog)?;
                let elem = warp_frags[src].decl.precision.size_bytes();
                let n = warp_frags[src].decl.elems();
                let data = warp_frags[src].data.clone();
                smem.store(addr, elem, &data)
                    .map_err(|detail| SimError::SharedMemoryOverflow { detail })?;
                tally.smem_bytes_written += (n * elem) as u64;
                writes.push((w, (addr, n * elem)));
            }
            Op::SharedLoad { dst, addr } => {
                let decl = frag_decl(prog, dst)?;
                let elem = decl.precision.size_bytes();
                let n = decl.elems();
                let values = smem
                    .load(addr, elem, n)
                    .map_err(|detail| SimError::SharedMemoryFault { warp: w, detail })?;
                warp_frags[dst].store(&values);
                tally.smem_bytes_read += (n * elem) as u64;
                tally.has_smem_load = true;
                reads.push((w, (addr, n * elem)));
            }
            Op::RegCopy { dst, src } => {
                require_init(warp_frags, src, w, prog)?;
                let (sr, sc) = {
                    let d = &warp_frags[src].decl;
                    (d.rows, d.cols)
                };
                let dd = frag_decl(prog, dst)?;
                if (dd.rows, dd.cols) != (sr, sc) {
                    return Err(SimError::BadOperand {
                        detail: format!(
                            "RegCopy shape mismatch: {}x{} -> {}x{}",
                            sr, sc, dd.rows, dd.cols
                        ),
                    });
                }
                let data = warp_frags[src].data.clone();
                warp_frags[dst].store(&data);
                tally.reg_copies += 1;
            }
            Op::ZeroAcc { frag } => {
                frag_decl(prog, frag)?;
                warp_frags[frag].zero();
            }
            Op::Mma {
                d,
                a,
                b,
                a_cols,
                b_rows,
            } => {
                require_init(warp_frags, a, w, prog)?;
                require_init(warp_frags, b, w, prog)?;
                require_init(warp_frags, d, w, prog)?;
                let flops = self.exec_mma(prog, d, a, b, a_cols, b_rows, warp_frags, tally)?;
                *flops_charged += flops;
            }
            Op::Scale { frag, factor } => {
                require_init(warp_frags, frag, w, prog)?;
                let prec = warp_frags[frag].decl.precision;
                for x in warp_frags[frag].data.iter_mut() {
                    *x = prec.round(*x * factor);
                }
                tally.reg_copies += 1;
            }
            Op::AddAssign { dst, src } => {
                require_init(warp_frags, dst, w, prog)?;
                require_init(warp_frags, src, w, prog)?;
                let (dd, sd) = (&warp_frags[dst].decl, &warp_frags[src].decl);
                if (dd.rows, dd.cols) != (sd.rows, sd.cols) {
                    return Err(SimError::BadOperand {
                        detail: format!(
                            "AddAssign shape mismatch: {}x{} += {}x{}",
                            dd.rows, dd.cols, sd.rows, sd.cols
                        ),
                    });
                }
                let prec = warp_frags[dst].decl.precision;
                let src_data = warp_frags[src].data.clone();
                for (x, s) in warp_frags[dst].data.iter_mut().zip(src_data) {
                    *x = prec.round(*x + s);
                }
                tally.reg_copies += 1;
            }
            Op::Unary { frag, func } => {
                require_init(warp_frags, frag, w, prog)?;
                let prec = warp_frags[frag].decl.precision;
                let cols = warp_frags[frag].decl.cols;
                match func {
                    UnaryFunc::Relu => {
                        for x in warp_frags[frag].data.iter_mut() {
                            *x = prec.round(x.max(0.0));
                        }
                    }
                    UnaryFunc::Gelu => {
                        for x in warp_frags[frag].data.iter_mut() {
                            *x = prec.round(crate::program::gelu(*x));
                        }
                    }
                    UnaryFunc::Softmax { scale } => {
                        for row in warp_frags[frag].data.chunks_mut(cols) {
                            let max = row
                                .iter()
                                .map(|x| scale * x)
                                .fold(f64::NEG_INFINITY, f64::max);
                            let exps: Vec<f64> =
                                row.iter().map(|x| (scale * x - max).exp()).collect();
                            let sum: f64 = exps.iter().sum();
                            for (x, e) in row.iter_mut().zip(exps) {
                                *x = prec.round(e / sum);
                            }
                        }
                    }
                }
                tally.reg_copies += 1;
            }
            Op::AddRowBroadcast { dst, src } => {
                require_init(warp_frags, dst, w, prog)?;
                require_init(warp_frags, src, w, prog)?;
                let (dd, sd) = (&warp_frags[dst].decl, &warp_frags[src].decl);
                if sd.rows != 1 || sd.cols != dd.cols {
                    return Err(SimError::BadOperand {
                        detail: format!(
                            "AddRowBroadcast needs a 1x{} row, got {}x{}",
                            dd.cols, sd.rows, sd.cols
                        ),
                    });
                }
                let prec = warp_frags[dst].decl.precision;
                let cols = warp_frags[dst].decl.cols;
                let row = warp_frags[src].data.clone();
                for chunk in warp_frags[dst].data.chunks_mut(cols) {
                    for (x, b) in chunk.iter_mut().zip(&row) {
                        *x = prec.round(*x + b);
                    }
                }
                tally.reg_copies += 1;
            }
            Op::MetaStore { addr, bytes } => {
                if addr + bytes > smem.capacity() {
                    return Err(SimError::SharedMemoryOverflow {
                        detail: format!("metadata at {addr}+{bytes} exceeds {} B", smem.capacity()),
                    });
                }
                tally.smem_bytes_written += bytes as u64;
                writes.push((w, (addr, bytes)));
            }
            Op::MetaLoad { addr, bytes } => {
                tally.smem_bytes_read += bytes as u64;
                tally.has_smem_load = true;
                reads.push((w, (addr, bytes)));
            }
            Op::GlobalLoad { .. } | Op::GlobalStore { .. } => {
                unreachable!("global-memory ops are handled by exec_op")
            }
            Op::Barrier => unreachable!("barriers are consumed by the phase loop"),
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn exec_mma(
        &self,
        prog: &WarpProgram,
        d: usize,
        a: usize,
        b: usize,
        a_cols: Option<(usize, usize)>,
        b_rows: Option<(usize, usize)>,
        warp_frags: &mut [FragValue],
        tally: &mut PhaseTally,
    ) -> Result<u64, SimError> {
        let (ad, bd, dd) = (
            frag_decl(prog, a)?.clone(),
            frag_decl(prog, b)?.clone(),
            frag_decl(prog, d)?.clone(),
        );
        if ad.precision != bd.precision {
            return Err(SimError::ShapeMismatch {
                detail: format!("A is {:?} but B is {:?}", ad.precision, bd.precision),
            });
        }
        let (ac0, ak) = a_cols.unwrap_or((0, ad.cols));
        let (br0, bk) = b_rows.unwrap_or((0, bd.rows));
        if ac0 + ak > ad.cols || br0 + bk > bd.rows {
            return Err(SimError::BadOperand {
                detail: format!(
                    "k-slice out of bounds: a[:, {ac0}..{}] of {} cols, b[{br0}..{}, :] of {} rows",
                    ac0 + ak,
                    ad.cols,
                    br0 + bk,
                    bd.rows
                ),
            });
        }
        if ak != bk {
            return Err(SimError::ShapeMismatch {
                detail: format!("k extents differ: {ak} vs {bk}"),
            });
        }
        if dd.rows != ad.rows || dd.cols != bd.cols {
            return Err(SimError::ShapeMismatch {
                detail: format!(
                    "C is {}x{} but A·B is {}x{}",
                    dd.rows, dd.cols, ad.rows, bd.cols
                ),
            });
        }
        let shape =
            shape_for(self.device, ad.precision).ok_or_else(|| SimError::UnsupportedPrecision {
                device: self.device.name.to_string(),
                precision: ad.precision.label().to_string(),
            })?;

        // Extract the k-slices row-major.
        let (m, n, k) = (ad.rows, bd.cols, ak);
        let a_slice: Vec<f64> = {
            let src = &warp_frags[a].data;
            let mut v = Vec::with_capacity(m * k);
            for r in 0..m {
                v.extend_from_slice(&src[r * ad.cols + ac0..r * ad.cols + ac0 + ak]);
            }
            v
        };
        let b_slice: Vec<f64> = {
            let src = &warp_frags[b].data;
            let mut v = Vec::with_capacity(k * n);
            for r in 0..k {
                v.extend_from_slice(&src[(br0 + r) * bd.cols..(br0 + r) * bd.cols + n]);
            }
            v
        };
        let flops = {
            let dv = &mut warp_frags[d];
            let f = mma_fragment(
                shape,
                ad.precision,
                m,
                n,
                k,
                &a_slice,
                &b_slice,
                &mut dv.data,
            );
            // The accumulator fragment holds values at its own precision.
            let dp = dv.decl.precision;
            for x in dv.data.iter_mut() {
                *x = dp.round(*x);
            }
            f
        };
        tally.add_flops(ad.precision, flops);
        Ok(flops)
    }
    /// Lay one phase's raw op records onto the simulated clock: each
    /// warp's ops run back to back from the phase start, each op sized by
    /// its standalone cost (bytes over bandwidth, flops over one tensor
    /// core, latency on the first load of the phase).
    pub(crate) fn layout_phase_trace(
        &self,
        trace: &mut Trace,
        phase: usize,
        phase_start: f64,
        raw: &[(usize, TraceKind, u64, String)],
    ) {
        let b_sm = self.device.smem_bytes_per_cycle();
        let mut offsets: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        let mut first_load: std::collections::BTreeMap<usize, bool> =
            std::collections::BTreeMap::new();
        for (warp, kind, amount, detail) in raw {
            let off = offsets.entry(*warp).or_insert(0.0);
            let dur = match kind {
                TraceKind::SharedStore | TraceKind::Meta => *amount as f64 / b_sm,
                TraceKind::SharedLoad => {
                    let fl = first_load.entry(*warp).or_insert(true);
                    let lat = if *fl {
                        self.device.smem_latency as f64
                    } else {
                        0.0
                    };
                    *fl = false;
                    lat + *amount as f64 / b_sm
                }
                TraceKind::GlobalLoad => {
                    self.device.gmem_latency as f64
                        + *amount as f64 / self.device.gmem_bytes_per_cycle
                }
                TraceKind::GlobalStore => *amount as f64 / self.device.gmem_bytes_per_cycle,
                TraceKind::RegCopy => self.device.reg_latency as f64,
                TraceKind::Mma => {
                    // One warp feeds one tensor core; the duration uses
                    // the device's FP16 rate as a visualization scale
                    // (per-precision rates differ by a constant factor).
                    let per_tc = self
                        .device
                        .ops_per_cycle_per_tc(crate::precision::Precision::Fp16)
                        .or_else(|| {
                            self.device
                                .ops_per_cycle_per_tc(crate::precision::Precision::Fp64)
                        })
                        .unwrap_or(1.0);
                    *amount as f64 / per_tc
                }
                TraceKind::Barrier => 0.0,
            };
            trace.events.push(TraceEvent {
                warp: *warp,
                phase,
                kind: *kind,
                amount: *amount,
                start: phase_start + *off,
                duration: dur,
                detail: detail.clone(),
            });
            *off += dur;
        }
    }
}

/// Trace kind + human-readable detail of one op.
pub(crate) fn describe_op(prog: &WarpProgram, op: &Op) -> (TraceKind, String) {
    let name = |id: usize| {
        prog.frags
            .get(id)
            .map(|f| f.name.clone())
            .unwrap_or_else(|| format!("frag{id}"))
    };
    match *op {
        Op::GlobalLoad { dst, .. } => (TraceKind::GlobalLoad, name(dst)),
        Op::GlobalStore {
            src, accumulate, ..
        } => (
            TraceKind::GlobalStore,
            if accumulate {
                format!("{} (accumulate)", name(src))
            } else {
                name(src)
            },
        ),
        Op::SharedStore { src, addr } => {
            (TraceKind::SharedStore, format!("{} @{}", name(src), addr))
        }
        Op::SharedLoad { dst, addr } => (TraceKind::SharedLoad, format!("{} @{}", name(dst), addr)),
        Op::RegCopy { dst, src } => (
            TraceKind::RegCopy,
            format!("{} <- {}", name(dst), name(src)),
        ),
        Op::ZeroAcc { frag } => (TraceKind::RegCopy, format!("zero {}", name(frag))),
        Op::Mma { d, a, b, .. } => (
            TraceKind::Mma,
            format!("{} += {} x {}", name(d), name(a), name(b)),
        ),
        Op::Scale { frag, factor } => (TraceKind::RegCopy, format!("{} *= {factor}", name(frag))),
        Op::AddAssign { dst, src } => (
            TraceKind::RegCopy,
            format!("{} += {}", name(dst), name(src)),
        ),
        Op::Unary { frag, func } => {
            let f = match func {
                UnaryFunc::Relu => "relu".to_string(),
                UnaryFunc::Gelu => "gelu".to_string(),
                UnaryFunc::Softmax { scale } => format!("softmax[{scale}]"),
            };
            (TraceKind::RegCopy, format!("{f}({})", name(frag)))
        }
        Op::AddRowBroadcast { dst, src } => (
            TraceKind::RegCopy,
            format!("{} += row {}", name(dst), name(src)),
        ),
        Op::MetaStore { bytes, .. } => (TraceKind::Meta, format!("meta store {bytes} B")),
        Op::MetaLoad { bytes, .. } => (TraceKind::Meta, format!("meta load {bytes} B")),
        Op::Barrier => (TraceKind::Barrier, String::new()),
    }
}

pub(crate) fn frag_decl(
    prog: &WarpProgram,
    id: usize,
) -> Result<&crate::fragment::FragDecl, SimError> {
    prog.frags.get(id).ok_or_else(|| SimError::BadOperand {
        detail: format!(
            "fragment id {id} out of range ({} declared)",
            prog.frags.len()
        ),
    })
}

pub(crate) fn require_init(
    warp_frags: &[FragValue],
    id: usize,
    warp: usize,
    prog: &WarpProgram,
) -> Result<(), SimError> {
    let fv = warp_frags.get(id).ok_or_else(|| SimError::BadOperand {
        detail: format!("fragment id {id} out of range"),
    })?;
    if !fv.initialized {
        return Err(SimError::UninitializedFragment {
            warp,
            frag: prog.frags[id].name.clone(),
        });
    }
    Ok(())
}

pub(crate) fn overlap(a: (usize, usize), b: (usize, usize)) -> bool {
    a.0 < b.0 + b.1 && b.0 < a.0 + a.1
}

pub(crate) fn detect_races(
    writes: &[(usize, (usize, usize))],
    reads: &[(usize, (usize, usize))],
) -> Result<(), SimError> {
    for &(ww, wr) in writes {
        for &(rw, rr) in reads {
            if ww != rw && overlap(wr, rr) {
                return Err(SimError::SharedMemoryHazard {
                    detail: format!(
                        "warp {ww} writes bytes {}..{} while warp {rw} reads {}..{} \
                         in the same phase",
                        wr.0,
                        wr.0 + wr.1,
                        rr.0,
                        rr.0 + rr.1
                    ),
                });
            }
        }
        for &(ow, or) in writes {
            if ww < ow && overlap(wr, or) {
                return Err(SimError::SharedMemoryHazard {
                    detail: format!(
                        "warps {ww} and {ow} both write overlapping bytes \
                         {}..{} / {}..{} in the same phase",
                        wr.0,
                        wr.0 + wr.1,
                        or.0,
                        or.0 + or.1
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Per-fragment access events for the lazy register model.
#[derive(Clone, Copy)]
enum Access {
    Def,
    ReadFull,
    ReadCols(usize, usize),
}

/// Peak registers per thread under the lazy model (see
/// [`Engine::analyze_registers_lazy`]).
fn lazy_register_usage(prog: &WarpProgram, warp_size: u32, reg_width: u32) -> u32 {
    use std::collections::BTreeMap;
    let mut events: Vec<Vec<(usize, Access)>> = vec![Vec::new(); prog.frags.len()];
    for (idx, op) in prog.ops.iter().enumerate() {
        match *op {
            Op::GlobalLoad { dst, .. } | Op::SharedLoad { dst, .. } | Op::ZeroAcc { frag: dst } => {
                events[dst].push((idx, Access::Def))
            }
            Op::GlobalStore { src, .. } | Op::SharedStore { src, .. } => {
                events[src].push((idx, Access::ReadFull))
            }
            Op::RegCopy { dst, src } => {
                events[dst].push((idx, Access::Def));
                events[src].push((idx, Access::ReadFull));
            }
            Op::Scale { frag, .. } | Op::Unary { frag, .. } => {
                events[frag].push((idx, Access::ReadFull))
            }
            Op::AddAssign { dst, src } | Op::AddRowBroadcast { dst, src } => {
                events[dst].push((idx, Access::ReadFull));
                events[src].push((idx, Access::ReadFull));
            }
            Op::Mma {
                d,
                a,
                b,
                a_cols,
                b_rows,
            } => {
                events[d].push((idx, Access::ReadFull));
                match a_cols {
                    Some((c0, nc)) => events[a].push((idx, Access::ReadCols(c0, nc))),
                    None => events[a].push((idx, Access::ReadFull)),
                }
                // Row slices of B shrink along k as well, but rows are the
                // leading dimension; treat them like full reads (they are
                // received per stage anyway).
                let _ = b_rows;
                events[b].push((idx, Access::ReadFull));
            }
            Op::MetaStore { .. } | Op::MetaLoad { .. } | Op::Barrier => {}
        }
    }

    // Allocation units: (regs, live_from, live_to).
    let mut units: Vec<(u32, usize, usize)> = Vec::new();
    for (frag, evs) in prog.frags.iter().zip(&events) {
        if evs.is_empty() {
            continue;
        }
        let reads: Vec<&(usize, Access)> = evs
            .iter()
            .filter(|(_, a)| !matches!(a, Access::Def))
            .collect();
        let all_sliced =
            !reads.is_empty() && reads.iter().all(|(_, a)| matches!(a, Access::ReadCols(..)));
        if all_sliced {
            // Chunked allocation: group reads by column interval.
            let mut chunks: BTreeMap<(usize, usize), (usize, usize)> = BTreeMap::new();
            for &&(idx, ref a) in &reads {
                if let Access::ReadCols(c0, nc) = *a {
                    let e = chunks.entry((c0, nc)).or_insert((idx, idx));
                    e.0 = e.0.min(idx);
                    e.1 = e.1.max(idx);
                }
            }
            for (&(_, nc), &(from, to)) in &chunks {
                let bytes = frag.rows * nc * frag.precision.size_bytes();
                let regs = bytes
                    .div_ceil(warp_size as usize)
                    .div_ceil(reg_width as usize) as u32;
                units.push((regs, from, to));
            }
        } else {
            // Whole fragment, loads sunk to first use when one exists.
            let from = reads
                .iter()
                .map(|(i, _)| *i)
                .min()
                .unwrap_or_else(|| evs.iter().map(|(i, _)| *i).min().unwrap());
            let to = evs.iter().map(|(i, _)| *i).max().unwrap();
            units.push((frag.regs_per_thread(warp_size, reg_width), from.min(to), to));
        }
    }

    let mut peak = 0u32;
    for point in 0..prog.ops.len().max(1) {
        let live: u32 = units
            .iter()
            .filter(|&&(_, f, t)| f <= point && point <= t)
            .map(|&(r, _, _)| r)
            .sum();
        peak = peak.max(live);
    }
    peak
}

/// Live ranges of each fragment of a warp program (op-index granularity).
fn live_ranges(prog: &WarpProgram) -> Vec<Option<LiveRange>> {
    let mut ranges: Vec<Option<LiveRange>> = vec![None; prog.frags.len()];
    let touch =
        |frag: usize, idx: usize, ranges: &mut Vec<Option<LiveRange>>| match &mut ranges[frag] {
            Some(r) => {
                r.first_def = r.first_def.min(idx);
                r.last_use = r.last_use.max(idx);
            }
            None => {
                ranges[frag] = Some(LiveRange {
                    first_def: idx,
                    last_use: idx,
                })
            }
        };
    for (idx, op) in prog.ops.iter().enumerate() {
        match *op {
            Op::GlobalLoad { dst, .. } | Op::SharedLoad { dst, .. } | Op::ZeroAcc { frag: dst } => {
                touch(dst, idx, &mut ranges)
            }
            Op::GlobalStore { src, .. } | Op::SharedStore { src, .. } => {
                touch(src, idx, &mut ranges)
            }
            Op::RegCopy { dst, src } => {
                touch(dst, idx, &mut ranges);
                touch(src, idx, &mut ranges);
            }
            Op::Scale { frag, .. } | Op::Unary { frag, .. } => touch(frag, idx, &mut ranges),
            Op::AddAssign { dst, src } | Op::AddRowBroadcast { dst, src } => {
                touch(dst, idx, &mut ranges);
                touch(src, idx, &mut ranges);
            }
            Op::Mma { d, a, b, .. } => {
                touch(d, idx, &mut ranges);
                touch(a, idx, &mut ranges);
                touch(b, idx, &mut ranges);
            }
            Op::MetaStore { .. } | Op::MetaLoad { .. } | Op::Barrier => {}
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::gh200;
    use crate::matrix::Matrix;
    use crate::precision::Precision;
    use crate::program::BlockKernel;

    fn tiny_gemm_kernel(
        gmem: &mut GlobalMemory,
        p: usize,
        n: usize,
    ) -> (BlockKernel, crate::memory::global::BufferId) {
        // Every warp computes the whole C = A*B redundantly except warp 0
        // stores. Not a KAMI algorithm — just engine exercise.
        let a = Matrix::seeded_uniform(n, n, 1);
        let b = Matrix::seeded_uniform(n, n, 2);
        let ab = gmem.upload("A", &a, Precision::Fp64);
        let bb = gmem.upload("B", &b, Precision::Fp64);
        let cb = gmem.alloc_zeroed("C", n, n, Precision::Fp64);
        let k = BlockKernel::spmd(p, |i, w| {
            let fa = w.frag("A", n, n, Precision::Fp64);
            let fb = w.frag("B", n, n, Precision::Fp64);
            let fc = w.frag("C", n, n, Precision::Fp64);
            w.global_load(fa, ab, 0, 0);
            w.global_load(fb, bb, 0, 0);
            w.zero_acc(fc);
            w.mma(fc, fa, fb);
            w.barrier();
            if i == 0 {
                w.global_store(fc, cb, 0, 0);
            }
        });
        (k, cb)
    }

    #[test]
    fn functional_gemm_matches_reference() {
        let dev = gh200();
        let mut gmem = GlobalMemory::new();
        let (k, cb) = tiny_gemm_kernel(&mut gmem, 2, 8);
        let rep = Engine::new(&dev).run(&k, &mut gmem).unwrap();
        assert!(rep.cycles > 0.0);
        let a = Matrix::seeded_uniform(8, 8, 1);
        let b = Matrix::seeded_uniform(8, 8, 2);
        let c = gmem.download(cb);
        let mut want = Matrix::zeros(8, 8);
        for i in 0..8 {
            for j in 0..8 {
                let mut s = 0.0f64;
                for l in 0..8 {
                    s = a[(i, l)].mul_add(b[(l, j)], s);
                }
                want[(i, j)] = s;
            }
        }
        assert!(c.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn barrier_mismatch_detected() {
        let dev = gh200();
        let k = BlockKernel::spmd(2, |i, w| {
            let f = w.frag("x", 1, 1, Precision::Fp32);
            w.zero_acc(f);
            if i == 0 {
                w.barrier();
            }
        });
        let mut gmem = GlobalMemory::new();
        assert!(matches!(
            Engine::new(&dev).run(&k, &mut gmem),
            Err(SimError::BarrierMismatch { .. })
        ));
    }

    #[test]
    fn same_phase_race_detected() {
        let dev = gh200();
        let k = BlockKernel::spmd(2, |i, w| {
            let f = w.frag("x", 1, 1, Precision::Fp32);
            w.zero_acc(f);
            if i == 0 {
                w.shared_store(f, 0);
            } else {
                w.shared_load(f, 0);
            }
        });
        let mut gmem = GlobalMemory::new();
        assert!(matches!(
            Engine::new(&dev).run(&k, &mut gmem),
            Err(SimError::SharedMemoryHazard { .. })
        ));
    }

    #[test]
    fn barrier_separated_exchange_is_legal() {
        let dev = gh200();
        let k = BlockKernel::spmd(2, |i, w| {
            let f = w.frag("x", 4, 4, Precision::Fp16);
            w.zero_acc(f);
            if i == 0 {
                w.shared_store(f, 0);
            }
            w.barrier();
            if i == 1 {
                w.shared_load(f, 0);
            }
        });
        let mut gmem = GlobalMemory::new();
        let rep = Engine::new(&dev).run(&k, &mut gmem).unwrap();
        assert_eq!(rep.smem_bytes_written, 32);
        assert_eq!(rep.smem_bytes_read, 32);
        // Store phase: 32/128 cycles; load phase: 22 + 32/128.
        assert!((rep.totals.comm - (22.0 + 0.5)).abs() < 1e-9);
    }

    #[test]
    fn uninitialized_fragment_read_detected() {
        let dev = gh200();
        let k = BlockKernel::spmd(1, |_, w| {
            let f = w.frag("x", 1, 1, Precision::Fp32);
            w.shared_store(f, 0);
        });
        let mut gmem = GlobalMemory::new();
        assert!(matches!(
            Engine::new(&dev).run(&k, &mut gmem),
            Err(SimError::UninitializedFragment { .. })
        ));
    }

    #[test]
    fn register_overflow_detected() {
        let dev = gh200();
        // One warp holding a 256x128 FP64 fragment: 262144 B / 32 threads
        // / 4 B = 2048 regs >> 255.
        let k = BlockKernel::spmd(1, |_, w| {
            let f = w.frag("huge", 256, 128, Precision::Fp64);
            w.zero_acc(f);
        });
        let mut gmem = GlobalMemory::new();
        assert!(matches!(
            Engine::new(&dev).run(&k, &mut gmem),
            Err(SimError::RegisterOverflow { .. })
        ));
    }

    #[test]
    fn mma_shape_mismatch_detected() {
        let dev = gh200();
        let k = BlockKernel::spmd(1, |_, w| {
            let a = w.frag("a", 4, 8, Precision::Fp16);
            let b = w.frag("b", 4, 4, Precision::Fp16); // k mismatch: 8 vs 4
            let c = w.frag("c", 4, 4, Precision::Fp32);
            w.zero_acc(a);
            w.zero_acc(b);
            w.zero_acc(c);
            w.mma(c, a, b);
        });
        let mut gmem = GlobalMemory::new();
        assert!(matches!(
            Engine::new(&dev).run(&k, &mut gmem),
            Err(SimError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn unsupported_precision_detected() {
        let dev = crate::device::amd_7900xtx();
        let k = BlockKernel::spmd(1, |_, w| {
            let a = w.frag("a", 4, 4, Precision::Fp64);
            let b = w.frag("b", 4, 4, Precision::Fp64);
            let c = w.frag("c", 4, 4, Precision::Fp64);
            w.zero_acc(a);
            w.zero_acc(b);
            w.zero_acc(c);
            w.mma(c, a, b);
        });
        let mut gmem = GlobalMemory::new();
        assert!(matches!(
            Engine::new(&dev).run(&k, &mut gmem),
            Err(SimError::UnsupportedPrecision { .. })
        ));
    }

    #[test]
    fn sliced_mma_uses_submatrix() {
        let dev = gh200();
        let mut gmem = GlobalMemory::new();
        let a = Matrix::from_fn(2, 4, |r, c| (r * 4 + c) as f64);
        let b = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        let ab = gmem.upload("A", &a, Precision::Fp64);
        let bb = gmem.upload("B", &b, Precision::Fp64);
        let cb = gmem.alloc_zeroed("C", 2, 2, Precision::Fp64);
        let k = BlockKernel::spmd(1, |_, w| {
            let fa = w.frag("A", 2, 4, Precision::Fp64);
            let fb = w.frag("B", 2, 2, Precision::Fp64);
            let fc = w.frag("C", 2, 2, Precision::Fp64);
            w.global_load(fa, ab, 0, 0);
            w.global_load(fb, bb, 0, 0);
            w.zero_acc(fc);
            // C += A[:, 2..4] * I
            w.mma_a_cols(fc, fa, fb, 2, 2);
            w.global_store(fc, cb, 0, 0);
        });
        Engine::new(&dev).run(&k, &mut gmem).unwrap();
        let c = gmem.download(cb);
        assert_eq!(c[(0, 0)], 2.0);
        assert_eq!(c[(0, 1)], 3.0);
        assert_eq!(c[(1, 0)], 6.0);
        assert_eq!(c[(1, 1)], 7.0);
    }

    #[test]
    fn run_traced_produces_a_consistent_timeline() {
        let dev = gh200();
        let mut gmem = GlobalMemory::new();
        let (k, _) = tiny_gemm_kernel(&mut gmem, 2, 8);
        let (report, trace) = Engine::new(&dev).run_traced(&k, &mut gmem).unwrap();
        // Trace clock spans exactly the reported cycles.
        assert!((trace.total_cycles() - report.cycles).abs() < 1e-9);
        // One phase boundary per phase, plus the end marker.
        assert_eq!(trace.phase_starts.len(), report.phase_costs.len() + 1);
        // Events never start before their phase.
        for e in &trace.events {
            assert!(e.start + 1e-9 >= trace.phase_starts[e.phase], "{e:?}");
        }
        // Both warps ran MMAs; warp 0 stored the result.
        assert!(trace.cycles_by_kind(crate::trace::TraceKind::Mma) > 0.0);
        assert!(trace
            .warp_events(0)
            .any(|e| e.kind == crate::trace::TraceKind::GlobalStore));
        // Chrome export parses.
        assert!(trace.to_chrome_json().starts_with('['));
    }

    #[test]
    fn live_range_reuse_lowers_measured_registers() {
        let dev = gh200();
        // Two large fragments with disjoint lifetimes.
        let k = BlockKernel::spmd(1, |_, w| {
            let f1 = w.frag("f1", 32, 32, Precision::Fp32);
            let f2 = w.frag("f2", 32, 32, Precision::Fp32);
            w.zero_acc(f1);
            w.shared_store(f1, 0);
            w.zero_acc(f2);
            w.shared_store(f2, 4096);
        });
        let usage = Engine::new(&dev).analyze_registers(&k);
        assert_eq!(usage[0].theoretical_regs, 64);
        assert_eq!(usage[0].measured_regs, 32);
    }
}
