//! Property-based engine fuzzing: randomly parameterized — but legal by
//! construction — block kernels must execute successfully with
//! self-consistent reports; randomly broken kernels must fail with the
//! right error, never panic.

use kami_gpu_sim::{
    device, BlockKernel, CostMode, Engine, GlobalMemory, Matrix, Precision, SimError,
};
use proptest::prelude::*;

/// A ring-exchange kernel: each round, every warp broadcasts its tile to
/// its own region, then loads its neighbour's tile and multiplies it
/// into an accumulator. Legal for any (warps, tile, rounds, precision).
fn ring_kernel(
    gmem: &mut GlobalMemory,
    p: usize,
    tile: usize,
    rounds: usize,
    prec: Precision,
) -> BlockKernel {
    let a = Matrix::seeded_uniform(tile * p, tile, 7);
    let ab = gmem.upload("A", &a, prec);
    let cb = gmem.alloc_zeroed("C", tile * p, tile, prec.accumulator());
    let region_bytes = tile * tile * prec.size_bytes();
    BlockKernel::spmd(p, |i, w| {
        let own = w.frag("own", tile, tile, prec);
        let recv = w.frag("recv", tile, tile, prec);
        let acc = w.frag("acc", tile, tile, prec.accumulator());
        w.global_load(own, ab, i * tile, 0);
        w.zero_acc(acc);
        for r in 0..rounds {
            // Each round uses fresh region offsets so phases never race.
            let base = (r % 2) * p * region_bytes;
            w.shared_store(own, base + i * region_bytes);
            w.barrier();
            w.shared_load(recv, base + ((i + 1) % p) * region_bytes);
            w.barrier();
            w.mma(acc, own, recv);
        }
        w.global_store(acc, cb, i * tile, 0);
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every legal ring kernel runs, and its report is self-consistent.
    #[test]
    fn legal_kernels_always_run(
        p in 1usize..6,
        tile_pow in 2u32..5, // 4..16
        rounds in 1usize..4,
        prec_idx in 0usize..3,
    ) {
        let tile = 1usize << tile_pow;
        let prec = [Precision::Fp16, Precision::Fp32, Precision::Fp64][prec_idx];
        let dev = device::gh200();
        // FP32 has no NVIDIA tensor path in our Table 4 (TF32 does);
        // map it to TF32 for the MMA shapes.
        let prec = if prec == Precision::Fp32 { Precision::Tf32 } else { prec };
        let mut gmem = GlobalMemory::new();
        let kernel = ring_kernel(&mut gmem, p, tile, rounds, prec);
        let report = Engine::new(&dev).run(&kernel, &mut gmem).unwrap();

        // Phases: 2 per round + the tail phase.
        prop_assert_eq!(report.phase_costs.len(), 2 * rounds + 1);
        // Exact volumes: every round stores p tiles and loads p tiles.
        let bytes = (p * rounds * tile * tile * prec.size_bytes()) as u64;
        prop_assert_eq!(report.smem_bytes_written, bytes);
        prop_assert_eq!(report.smem_bytes_read, bytes);
        // Cycles are positive, finite, and equal the component sum.
        prop_assert!(report.cycles.is_finite() && report.cycles > 0.0);
        let sum = report.totals.comm + report.totals.compute
            + report.totals.global + report.totals.reg;
        prop_assert!((report.cycles - sum).abs() < 1e-6);
        // MMA work: p warps × rounds × one tile³ product (padded).
        prop_assert!(report.flops_charged >= (2 * p * rounds * tile * tile * tile) as u64);
    }

    /// Determinism: running the same kernel twice gives identical
    /// reports and identical outputs.
    #[test]
    fn execution_is_deterministic(p in 1usize..5, rounds in 1usize..3) {
        let dev = device::gh200();
        let run = || {
            let mut gmem = GlobalMemory::new();
            let kernel = ring_kernel(&mut gmem, p, 8, rounds, Precision::Fp16);
            let rep = Engine::new(&dev).run(&kernel, &mut gmem).unwrap();
            (rep.cycles, rep.flops_charged, rep.smem_bytes_read)
        };
        prop_assert_eq!(run(), run());
    }

    /// Overlap mode never exceeds serial mode.
    #[test]
    fn overlap_never_slower(p in 1usize..5, rounds in 1usize..3) {
        let dev = device::gh200();
        let mut g1 = GlobalMemory::new();
        let k1 = ring_kernel(&mut g1, p, 8, rounds, Precision::Fp16);
        let serial = Engine::new(&dev).run(&k1, &mut g1).unwrap();
        let mut g2 = GlobalMemory::new();
        let k2 = ring_kernel(&mut g2, p, 8, rounds, Precision::Fp16);
        let overlap = Engine::with_cost(&dev, kami_gpu_sim::CostConfig::overlap())
            .run(&k2, &mut g2)
            .unwrap();
        prop_assert_eq!(overlap.mode, CostMode::Overlap);
        prop_assert!(overlap.cycles <= serial.cycles + 1e-9);
    }

    /// Breaking barrier balance in any single warp is always caught.
    #[test]
    fn unbalanced_barriers_always_detected(p in 2usize..6, victim in 0usize..6) {
        let victim = victim % p;
        let dev = device::gh200();
        let mut gmem = GlobalMemory::new();
        let mut kernel = ring_kernel(&mut gmem, p, 8, 2, Precision::Fp16);
        // Remove the victim's last barrier.
        let ops = &mut kernel.warps[victim].ops;
        if let Some(pos) = ops
            .iter()
            .rposition(|o| matches!(o, kami_gpu_sim::Op::Barrier))
        {
            ops.remove(pos);
        }
        let err = Engine::new(&dev).run(&kernel, &mut gmem).unwrap_err();
        prop_assert!(matches!(err, SimError::BarrierMismatch { .. }), "{err}");
    }

    /// Same-phase cross-warp aliasing is always caught as a race.
    #[test]
    fn injected_races_always_detected(p in 2usize..6) {
        let dev = device::gh200();
        let prec = Precision::Fp16;
        let kernel = BlockKernel::spmd(p, |i, w| {
            let f = w.frag("x", 4, 4, prec);
            w.zero_acc(f);
            if i == 0 {
                w.shared_store(f, 0);
            } else if i == 1 {
                w.shared_load(f, 0); // same phase as warp 0's store
            }
            w.barrier();
        });
        let mut gmem = GlobalMemory::new();
        let err = Engine::new(&dev).run(&kernel, &mut gmem).unwrap_err();
        // Either the race or (if the load executes first in warp order)
        // the uninitialized read — both are correct rejections.
        prop_assert!(
            matches!(
                err,
                SimError::SharedMemoryHazard { .. } | SimError::SharedMemoryFault { .. }
            ),
            "{err}"
        );
    }
}
