//! Vendored stand-in for `criterion` 0.5: the macro/builder surface the
//! bench targets use (`criterion_group!`/`criterion_main!`,
//! `benchmark_group`, `bench_with_input`, `bench_function`,
//! `BenchmarkId`, `Bencher::iter`). Each benchmark runs a short warmup
//! plus `sample_size` timed samples and prints the mean time per
//! iteration — no statistics, plots, or baselines.

use std::fmt::Display;
use std::time::Instant;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.sample_size, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `iters` calls of `routine` and accumulate the elapsed time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Warmup + calibration: aim for ~1ms per sample, bounded so cheap
    // and expensive benchmarks both finish promptly.
    let mut bench = Bencher {
        iters: 1,
        elapsed_ns: 0,
    };
    f(&mut bench);
    let per_iter = bench.elapsed_ns.max(1);
    let iters_per_sample = (1_000_000 / per_iter).clamp(1, 1000) as u64;

    let mut total_ns: u128 = 0;
    let mut total_iters: u64 = 0;
    for _ in 0..samples {
        let mut bench = Bencher {
            iters: iters_per_sample,
            elapsed_ns: 0,
        };
        f(&mut bench);
        total_ns += bench.elapsed_ns;
        total_iters += iters_per_sample;
    }
    let mean = total_ns as f64 / total_iters.max(1) as f64;
    println!("bench {label:<50} {mean:>12.1} ns/iter ({total_iters} iters)");
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::new("f", 8), &8usize, |b, n| {
            ran += 1;
            b.iter(|| n * 2)
        });
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
        c.bench_function("top", |b| b.iter(|| 40 + 2));
        assert!(ran >= 1);
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("algo", 64).label, "algo/64");
        assert_eq!(BenchmarkId::from_parameter(0.5).label, "0.5");
    }
}
