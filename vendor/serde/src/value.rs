//! The JSON-like value tree shared by the vendored `serde` and
//! `serde_json`: objects keep insertion order (a `Vec` of pairs) so
//! pretty-printed output lists struct fields in declaration order.

use std::fmt;
use std::ops::Index;

#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Field lookup on objects; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == *other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Display renders compact JSON (the `serde_json` stub adds the pretty
/// printer on top of the same escape logic).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write_number(f, *n),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

pub(crate) fn write_number(f: &mut impl fmt::Write, n: f64) -> fmt::Result {
    if n.is_nan() || n.is_infinite() {
        // JSON has no non-finite numbers; emit null like serde_json.
        write!(f, "null")
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

pub(crate) fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// Pretty-printing with two-space indentation, used by the `serde_json`
/// stub's `to_string_pretty`.
pub fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    use fmt::Write as _;
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                out.push_str(&pad_in);
                let _ = write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => {
            let _ = write!(out, "{other}");
        }
    }
}
