//! Vendored stand-in for `serde` (the build environment has no registry
//! access). The real serde's serializer-visitor architecture is replaced
//! by a concrete JSON-like [`value::Value`] model: `Serialize` renders a
//! value tree, `Deserialize` rebuilds from one. The derive macros (from
//! the sibling `serde_derive` stub) generate field-by-field impls for
//! named-field structs and unit-variant enums — the only shapes this
//! workspace serializes.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

/// Render `self` as a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, String>;
}

// ---- primitive impls ------------------------------------------------

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Number(n) => {
                        let cast = *n as $t;
                        if (cast as f64 - *n).abs() < 1e-9 {
                            Ok(cast)
                        } else {
                            Err(format!("number {n} does not fit {}", stringify!($t)))
                        }
                    }
                    other => Err(format!("expected number, got {other:?}")),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(format!("expected number, got {other:?}")),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}
