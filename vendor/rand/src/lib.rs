//! Vendored stand-in for `rand` 0.8: the trait surface this workspace
//! uses (`Rng::gen_range`, `SeedableRng::seed_from_u64`,
//! `seq::SliceRandom::shuffle`) over a splitmix64 core. Not the real
//! rand streams — all in-repo consumers are self-consistent (seeded
//! data generation for tests/benches), no golden data depends on the
//! exact sequence.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// User-facing extension trait, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for rand's StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    use super::RngCore;

    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..16).map(|_| a.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..16).map(|_| b.gen_range(0.0..1.0)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, (0..64).collect::<Vec<_>>(), "64 elements should move");
    }
}
