//! Derive macros for the vendored `serde` stand-in, written directly
//! against `proc_macro` (no `syn`/`quote` — the build environment has no
//! registry access). Supports exactly the shapes this workspace
//! serializes: structs with named fields and enums whose variants are
//! all units. Anything else is a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Enum of unit variants: variant identifiers.
    Enum(Vec<String>),
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let (name, shape) = match parse(input) {
        Ok(v) => v,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match (&shape, serialize) {
        (Shape::Struct(fields), true) => struct_ser(&name, fields),
        (Shape::Struct(fields), false) => struct_de(&name, fields),
        (Shape::Enum(variants), true) => enum_ser(&name, variants),
        (Shape::Enum(variants), false) => enum_de(&name, variants),
    };
    code.parse().expect("generated impl parses")
}

/// Walk the item tokens: skip attributes and visibility, find
/// `struct`/`enum`, the type name, and the brace-delimited body.
fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut kind: Option<&'static str> = None;
    let mut name = String::new();
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
                continue;
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" => {
                        i += 1;
                        // `pub(crate)` etc.: skip the parenthesis group.
                        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                        {
                            i += 1;
                        }
                        continue;
                    }
                    "struct" | "enum" => {
                        kind = Some(if s == "struct" { "struct" } else { "enum" });
                        match tokens.get(i + 1) {
                            Some(TokenTree::Ident(n)) => name = n.to_string(),
                            _ => return Err("expected type name".into()),
                        }
                        i += 2;
                        break;
                    }
                    _ => return Err(format!("unexpected token `{s}` before struct/enum")),
                }
            }
            _ => {
                i += 1;
            }
        }
    }
    let kind = kind.ok_or("no struct/enum found")?;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("generic types are not supported by the vendored serde derive".into());
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "{kind} {name} must have a braced body (tuple/unit forms unsupported)"
            ))
        }
    };
    let names = parse_body(body, kind == "struct")?;
    Ok((
        name,
        if kind == "struct" {
            Shape::Struct(names)
        } else {
            Shape::Enum(names)
        },
    ))
}

/// Extract field names (struct) or unit-variant names (enum) from the
/// body stream. Comma-separated segments; each segment is attributes,
/// optional visibility, then the identifier.
fn parse_body(body: TokenStream, is_struct: bool) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut at_segment_start = true;
    let mut tokens = body.into_iter().peekable();
    while let Some(t) = tokens.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                at_segment_start = true;
            }
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following bracket group.
                tokens.next();
            }
            TokenTree::Ident(id) if at_segment_start => {
                let s = id.to_string();
                if s == "pub" {
                    if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        tokens.next();
                    }
                    continue;
                }
                if is_struct {
                    match tokens.peek() {
                        Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                        _ => return Err(format!("field `{s}`: expected `:` (named fields only)")),
                    }
                } else {
                    match tokens.peek() {
                        None => {}
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                        _ => {
                            return Err(format!(
                                "variant `{s}` carries data — the vendored serde derive supports unit variants only"
                            ))
                        }
                    }
                }
                names.push(s);
                at_segment_start = false;
            }
            _ => {
                at_segment_start = false;
            }
        }
    }
    Ok(names)
}

fn struct_ser(name: &str, fields: &[String]) -> String {
    let pairs: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{pairs}])\n\
             }}\n\
         }}"
    )
}

fn struct_de(name: &str, fields: &[String]) -> String {
    let inits: String = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: <_ as ::serde::Deserialize>::from_value(\
                     v.get({f:?}).unwrap_or(&::serde::Value::Null))\
                     .map_err(|e| ::std::format!(\"{name}.{f}: {{}}\", e))?,"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

fn enum_ser(name: &str, variants: &[String]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| format!("{name}::{v} => {v:?},"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::String(::std::string::String::from(match self {{ {arms} }}))\n\
             }}\n\
         }}"
    )
}

fn enum_de(name: &str, variants: &[String]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                 match v {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {arms}\n\
                         other => ::std::result::Result::Err(::std::format!(\"unknown {name} variant {{}}\", other)),\n\
                     }},\n\
                     other => ::std::result::Result::Err(::std::format!(\"expected string for {name}, got {{:?}}\", other)),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
