//! Vendored stand-in for `rand_chacha`. `ChaCha8Rng` here is a
//! deterministic xoshiro256** generator seeded via splitmix64 — NOT the
//! real ChaCha stream. Every consumer in this workspace only needs a
//! seeded, reproducible source (random test matrices, sparsity
//! patterns); nothing depends on the genuine ChaCha output.

use rand::{RngCore, SeedableRng};

#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed through splitmix64 (the standard xoshiro
        // seeding procedure) so nearby seeds give unrelated streams.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        ChaCha8Rng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** step.
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let mut b = ChaCha8Rng::seed_from_u64(3);
        let mut c = ChaCha8Rng::seed_from_u64(4);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_works_through_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..200 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            seen_neg |= x < 0.0;
            seen_pos |= x > 0.0;
        }
        assert!(seen_neg && seen_pos);
    }
}
