//! Vendored stand-in for the `half` crate (the build environment has no
//! registry access), covering exactly the surface this workspace uses:
//! [`f16`]/[`bf16`] construction from `f64`/`f32`, lossless widening back
//! to `f64`/`f32`, and the `MAX` constants.
//!
//! Values are stored as the already-quantized `f64` rather than packed
//! bits — the workspace only ever round-trips through `f64`, so the
//! representable set (IEEE round-to-nearest-even onto the 10-bit /
//! 7-bit mantissa grids, with subnormals and saturation-to-infinity)
//! is what matters, not the encoding.

#![allow(non_camel_case_types)]

/// Round `x` to a binary floating format with `mant_bits` explicit
/// mantissa bits, minimum normal exponent `min_exp`, and largest finite
/// value `max_finite`, using round-to-nearest-even. Values that round
/// above `max_finite` become infinity (IEEE semantics with the usual
/// "round as if unbounded, then overflow" rule).
fn quantize(x: f64, mant_bits: i32, min_exp: i32, max_finite: f64) -> f64 {
    if x == 0.0 || x.is_nan() || x.is_infinite() {
        return x;
    }
    // Exponent of |x| as a power of two (f64 inputs are normal here —
    // anything below the f16/bf16 subnormal range underflows to zero
    // through the same scaling arithmetic).
    let bits = x.abs().to_bits();
    let e = ((bits >> 52) & 0x7ff) as i32 - 1023;
    // Quantum: one ULP at this magnitude, floored at the subnormal ULP.
    let ulp_exp = (e - mant_bits).max(min_exp - mant_bits);
    let step = (ulp_exp as f64).exp2();
    let y = (x / step).round_ties_even() * step;
    if y.abs() > max_finite {
        return if y > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        };
    }
    y
}

/// IEEE 754 binary16 (half precision): 10 mantissa bits, exponent in
/// `[-14, 15]`, max finite 65504.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct f16(f64);

impl f16 {
    pub const MAX: f16 = f16(65504.0);
    pub const MIN_POSITIVE: f16 = f16(6.103515625e-5); // 2^-14

    #[inline]
    pub fn from_f64(x: f64) -> Self {
        f16(quantize(x, 10, -14, 65504.0))
    }

    #[inline]
    pub fn from_f32(x: f32) -> Self {
        Self::from_f64(f64::from(x))
    }

    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0
    }

    #[inline]
    pub fn to_f32(self) -> f32 {
        self.0 as f32
    }
}

impl From<f16> for f64 {
    #[inline]
    fn from(v: f16) -> f64 {
        v.0
    }
}

impl From<f16> for f32 {
    #[inline]
    fn from(v: f16) -> f32 {
        v.0 as f32
    }
}

/// bfloat16: 7 mantissa bits, f32 exponent range, max finite
/// `(2 − 2⁻⁷)·2¹²⁷`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct bf16(f64);

/// `(2 − 2⁻⁷)·2¹²⁷` — the largest finite bf16.
pub const BF16_MAX: f64 = 3.3895313892515355e38;

impl bf16 {
    pub const MAX: bf16 = bf16(BF16_MAX);

    #[inline]
    pub fn from_f64(x: f64) -> Self {
        bf16(quantize(x, 7, -126, BF16_MAX))
    }

    #[inline]
    pub fn from_f32(x: f32) -> Self {
        Self::from_f64(f64::from(x))
    }

    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0
    }
}

impl From<bf16> for f64 {
    #[inline]
    fn from(v: bf16) -> f64 {
        v.0
    }
}

impl From<bf16> for f32 {
    #[inline]
    fn from(v: bf16) -> f32 {
        v.0 as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_exact_values_pass_through() {
        for v in [0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 6.103515625e-5] {
            assert_eq!(f64::from(f16::from_f64(v)), v, "{v}");
        }
    }

    #[test]
    fn f16_round_to_nearest_even_at_tie() {
        // 1 + 2^-11 is half-way between 1.0 and 1 + 2^-10: ties to even.
        assert_eq!(f64::from(f16::from_f64(1.0 + (2.0f64).powi(-11))), 1.0);
        // 1 + 3·2^-11 ties to the *odd* neighbour's even side: 1 + 2^-9.
        let x = 1.0 + 3.0 * (2.0f64).powi(-11);
        assert_eq!(f64::from(f16::from_f64(x)), 1.0 + (2.0f64).powi(-9));
    }

    #[test]
    fn f16_overflow_to_infinity() {
        assert!(f64::from(f16::from_f64(1e20)).is_infinite());
        assert!(f64::from(f16::from_f64(65520.0)).is_infinite());
        // 65519 rounds down to 65504 (max finite).
        assert_eq!(f64::from(f16::from_f64(65519.0)), 65504.0);
    }

    #[test]
    fn f16_subnormals() {
        let min_sub = (2.0f64).powi(-24);
        assert_eq!(f64::from(f16::from_f64(min_sub)), min_sub);
        // Below half the smallest subnormal: flush to zero.
        assert_eq!(f64::from(f16::from_f64(min_sub / 4.0)), 0.0);
    }

    #[test]
    fn bf16_coarse_mantissa() {
        assert_eq!(f64::from(bf16::from_f64(1.0 + (2.0f64).powi(-9))), 1.0);
        assert_eq!(
            f64::from(bf16::from_f64(1.0 + (2.0f64).powi(-7))),
            1.0 + (2.0f64).powi(-7)
        );
        assert!(f64::from(bf16::from_f64(1e20)).is_finite());
        assert!(f64::from(bf16::from_f64(1e39)).is_infinite());
        assert_eq!(f64::from(bf16::MAX), BF16_MAX);
    }

    #[test]
    fn specials_pass_through() {
        assert!(f64::from(f16::from_f64(f64::NAN)).is_nan());
        assert!(f64::from(f16::from_f64(f64::INFINITY)).is_infinite());
        assert_eq!(f64::from(f16::from_f64(-0.0)), 0.0);
    }
}
