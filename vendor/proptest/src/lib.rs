//! Vendored stand-in for `proptest`, implementing the subset this
//! workspace's property tests use: the `proptest!` macro with optional
//! `#![proptest_config(...)]`, range strategies over ints/floats,
//! `prop::sample::select`, `any::<bool>()`, and
//! `prop_assert!`/`prop_assert_eq!`. Sampling is deterministic (seeded
//! from the test name) and there is no shrinking — a failing case
//! reports its case number and arguments instead.

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    // Real proptest's prelude aliases the crate as `prop` so tests can
    // write `prop::sample::select(...)`.
    pub use crate as prop;
}

pub mod test_runner {
    /// Run-count configuration; everything else proptest configures is
    /// irrelevant to this stand-in.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic splitmix64 stream seeded from the test name, so
    /// every run of a test explores the same cases (reproducible
    /// failures without persistence files).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A value source: `pick` draws one sample. No shrinking.
    pub trait Strategy {
        type Value;
        fn pick(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_strategy!(f32, f64);

    /// Always yields the same value (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn pick(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Uniformly choose one of the given options per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: no options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    pub trait Arbitrary: Sized {
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<T>(PhantomData<T>);

    /// `any::<T>()` — the full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }
}

/// The `proptest! { ... }` block: an optional
/// `#![proptest_config(expr)]` header followed by `fn name(arg in
/// strategy, ...) { body }` items (each carrying its own outer
/// attributes, e.g. `#[test]` and doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::pick(&($strat), &mut __rng);)*
                let __case_desc = || {
                    let mut __d = ::std::format!("case {}/{}:", __case + 1, __config.cases);
                    $(
                        __d.push_str(&::std::format!(
                            " {} = {:?}", stringify!($arg), &$arg
                        ));
                    )*
                    __d
                };
                let __guard = $crate::CaseGuard::new(&__case_desc);
                { $body }
                ::std::mem::forget(__guard);
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Prints the failing case's arguments if the body panics (stand-in for
/// proptest's failure reporting; no shrinking).
pub struct CaseGuard<'a> {
    describe: &'a dyn Fn() -> String,
}

impl<'a> CaseGuard<'a> {
    pub fn new(describe: &'a dyn Fn() -> String) -> Self {
        CaseGuard { describe }
    }
}

impl Drop for CaseGuard<'_> {
    fn drop(&mut self) {
        // Only reached when the case body panicked (success path
        // `mem::forget`s the guard).
        eprintln!("proptest stand-in: failing {}", (self.describe)());
    }
}

/// In this stand-in, prop_assert* panic like their std counterparts;
/// the surrounding `CaseGuard` reports the failing arguments.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in -5.0f64..5.0, n in 1usize..10, b in any::<bool>()) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!((b as u8) < 2);
        }

        #[test]
        fn select_picks_members(v in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!(v == 2 || v == 4 || v == 8);
        }

        #[test]
        fn trailing_comma_accepted(
            a in 0u32..7,
            b in 0u64..9,
        ) {
            prop_assert!(a < 7 && b < 9);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        let mut r1 = crate::test_runner::TestRng::from_name("x");
        let mut r2 = crate::test_runner::TestRng::from_name("x");
        let s = 0usize..100;
        let a: Vec<usize> = (0..32).map(|_| s.pick(&mut r1)).collect();
        let b: Vec<usize> = (0..32).map(|_| s.pick(&mut r2)).collect();
        assert_eq!(a, b);
    }
}
