//! Vendored stand-in for `serde_json` over the vendored `serde`'s
//! [`Value`] model: a strict recursive-descent JSON parser and
//! compact/pretty printers. Covers the workspace's surface —
//! `from_str`, `to_string`, `to_string_pretty`, and `Value` with
//! indexing/accessors.

pub use serde::Value;

use serde::{value, Deserialize, Serialize};
use std::fmt;

#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: Serialize>(v: &T) -> Result<String, Error> {
    Ok(v.to_value().to_string())
}

pub fn to_string_pretty<T: Serialize>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    value::write_pretty(&mut out, &v.to_value(), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        src: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(Error)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.src.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.src[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.src[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v: Value =
            from_str(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\"y"}, "d": null, "e": true}"#).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["a"][2], -300.0);
        assert_eq!(v["b"]["c"], "x\"y");
        assert!(v["d"].is_null());
        assert_eq!(v["e"], true);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }

    #[test]
    fn round_trips_through_pretty() {
        let v: Value = from_str(r#"{"x": [1, {"y": "z"}], "n": 1.5}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
        let compact = to_string(&v).unwrap();
        let back2: Value = from_str(&compact).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn escapes_control_characters() {
        let v = Value::String("line\nbreak\ttab".into());
        let s = to_string(&v).unwrap();
        assert_eq!(s, "\"line\\nbreak\\ttab\"");
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }
}
