//! Vendored stand-in for `rayon` covering exactly the shapes this
//! workspace uses: `slice.par_iter().map(f).collect::<Vec<_>>()` and
//! `slice.par_iter_mut().enumerate().map(f).collect::<Vec<_>>()`. Work
//! is fanned out over `std::thread::scope` (an atomic work-stealing
//! index for the shared case, contiguous chunks for the mutable case);
//! results come back in input order, matching rayon's `collect`
//! semantics for indexed parallel iterators.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}

pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// Collection targets for [`ParMap::collect`]; only `Vec` is needed
/// in-tree.
pub trait FromParallelResults<R> {
    fn from_ordered_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallelResults<R> for Vec<R> {
    fn from_ordered_vec(v: Vec<R>) -> Self {
        v
    }
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    pub fn collect<C: FromParallelResults<R>>(self) -> C {
        let n = self.items.len();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        if threads <= 1 || n <= 1 {
            return C::from_ordered_vec(self.items.iter().map(&self.f).collect());
        }
        let next = AtomicUsize::new(0);
        let f = &self.f;
        let items = self.items;
        let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(&items[i])));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                indexed.extend(h.join().expect("rayon stub worker panicked"));
            }
        });
        indexed.sort_unstable_by_key(|(i, _)| *i);
        C::from_ordered_vec(indexed.into_iter().map(|(_, r)| r).collect())
    }
}

pub trait IntoParallelRefMutIterator<'a> {
    type Item: 'a;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    pub fn enumerate(self) -> ParIterMutEnumerate<'a, T> {
        ParIterMutEnumerate { items: self.items }
    }
}

pub struct ParIterMutEnumerate<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMutEnumerate<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMapMutEnumerate<'a, T, F>
    where
        F: Fn((usize, &mut T)) -> R + Sync,
        R: Send,
    {
        ParMapMutEnumerate {
            items: self.items,
            f,
        }
    }
}

pub struct ParMapMutEnumerate<'a, T, F> {
    items: &'a mut [T],
    f: F,
}

impl<'a, T, R, F> ParMapMutEnumerate<'a, T, F>
where
    T: Send,
    R: Send,
    F: Fn((usize, &mut T)) -> R + Sync,
{
    pub fn collect<C: FromParallelResults<R>>(self) -> C {
        let n = self.items.len();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        if threads <= 1 || n <= 1 {
            return C::from_ordered_vec(
                self.items
                    .iter_mut()
                    .enumerate()
                    .map(|(i, x)| (self.f)((i, x)))
                    .collect(),
            );
        }
        // Mutable items cannot be work-stolen through a shared slice, so
        // hand each worker a contiguous chunk; warps per block are few
        // and uniform enough that chunking balances fine.
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks_mut(chunk)
                .enumerate()
                .map(|(ci, items)| {
                    scope.spawn(move || {
                        items
                            .iter_mut()
                            .enumerate()
                            .map(|(j, x)| (ci * chunk + j, f((ci * chunk + j, x))))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                indexed.extend(h.join().expect("rayon stub worker panicked"));
            }
        });
        indexed.sort_unstable_by_key(|(i, _)| *i);
        C::from_ordered_vec(indexed.into_iter().map(|(_, r)| r).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_input_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_slices_and_tuples() {
        let pairs = vec![(1u32, 2u32), (3, 4), (5, 6)];
        let sums: Vec<u32> = pairs.par_iter().map(|(a, b)| a + b).collect();
        assert_eq!(sums, vec![3, 7, 11]);
    }

    #[test]
    fn par_iter_mut_mutates_in_place_and_preserves_order() {
        let mut items: Vec<u64> = (0..257).collect();
        let seen: Vec<u64> = items
            .par_iter_mut()
            .enumerate()
            .map(|(i, x)| {
                *x += 1;
                (i as u64) * 10 + *x
            })
            .collect();
        assert_eq!(items, (1..258).collect::<Vec<_>>());
        assert_eq!(
            seen,
            (0..257u64).map(|i| i * 10 + i + 1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [41u8];
        let out: Vec<u8> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }
}
