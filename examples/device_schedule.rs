//! Quickstart for the device-level scheduler (`kami-sched`).
//!
//! Schedules the paper's 16 384-block workload across every SM of a
//! GH200, compares the data-parallel and Stream-K decompositions on a
//! tail-heavy batch, and dumps a merged Perfetto trace (one track per
//! SM).
//!
//! ```text
//! cargo run --release --example device_schedule
//! ```

use kami::prelude::*;
use kami::sched::PAPER_BLOCK_COUNT;

fn main() {
    let dev = device::gh200();
    let plans = PlanCache::new();

    // 1. The paper's uniform workload: 16 384 identical 64³ FP16 blocks.
    let work = BlockWork::synthetic(64, 64, 64, Precision::Fp16);
    let report = Scheduler::new(&dev)
        .run(&work, &plans)
        .expect("uniform workload schedules");
    println!(
        "{} blocks on {} ({} SMs): {:.0} cycles → {:.1} TFLOPS [{}]",
        PAPER_BLOCK_COUNT,
        report.device_name,
        report.per_sm.len(),
        report.makespan_cycles,
        report.achieved_tflops,
        report.decomposition.label()
    );
    println!(
        "  utilization {:.1}%, tail imbalance {:.2}%, plans tuned {} / reused {}",
        report.utilization * 100.0,
        report.tail_imbalance * 100.0,
        report.plans_tuned,
        report.plans_reused
    );

    // 2. Tail-heavy: one block past an even wave. Data-parallel pays a
    //    whole extra wave; Stream-K splits the k-loop instead.
    let count = dev.num_sms as usize * 2 + 1;
    let tail = BlockWork::uniform(64, 64, 256, Precision::Fp64, count);
    for d in [Decomposition::DataParallel, Decomposition::StreamK] {
        let r = Scheduler::new(&dev)
            .with_decomposition(d)
            .run(&tail, &plans)
            .expect("tail workload schedules");
        println!(
            "{} blocks, {:>13}: {:>8.0} cycles (imbalance {:.2}%)",
            count,
            d.label(),
            r.makespan_cycles,
            r.tail_imbalance * 100.0
        );
    }

    // 3. Merged device trace: one Chrome-trace track per SM, with
    //    Stream-K fixup traffic visible as gmem events.
    let (_, trace) = Scheduler::new(&dev)
        .run_traced(&tail, &plans)
        .expect("traced run");
    let dir = std::path::Path::new("target");
    std::fs::create_dir_all(dir).expect("create target/");
    let out = dir.join("device_schedule_trace.json");
    std::fs::write(&out, trace.to_chrome_json()).expect("write trace");
    println!(
        "wrote {} ({} events) — open in chrome://tracing or https://ui.perfetto.dev",
        out.display(),
        trace.events.len()
    );
}
