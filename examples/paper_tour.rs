//! A guided tour of the paper, section by section, reproducing its
//! worked examples live against the simulator.
//!
//! ```text
//! cargo run --release --example paper_tour
//! ```

use kami::core::model::cycles::{self, ModelParams};
use kami::core::{gemm, Algo, KamiConfig};
use kami::prelude::*;

fn main() {
    println!("==== KAMI paper tour ====\n");

    // --- §3.2 / Fig 4(b): the memory-hierarchy analogy -------------------
    let dev = device::gh200();
    println!("§3.2  On-chip hierarchy of {}:", dev.name);
    println!(
        "      register latency {} cy vs shared {} cy (paper: ~1:20);\n\
      \u{20}      B_sm = {} B/cy vs per-SM global {} B/cy (paper: ~4:1)\n",
        dev.reg_latency,
        dev.smem_latency,
        dev.smem_bytes_per_cycle(),
        dev.gmem_bytes_per_cycle
    );

    // --- §4.3 worked example: 1D, p = 2, 8×8 FP64 -----------------------
    // "V_cm = 512 bytes ... T_cm = 26 cycles ... T_cp = 8 cycles ...
    //  T_all = 60 cycles."
    let prm = ModelParams::paper_example();
    let (m, n, k) = (8usize, 8usize, 8usize);
    println!("§4.3  1D worked example (p=2, 8x8x8 FP64, L_sm=22, B_sm=128, O_tc=32, n_tc=4):");
    println!(
        "      V_cm/stage = {} B (paper: 512)",
        cycles::v_cm_per_stage(Algo::OneD, m, n, k, 2, prm.s_e) as u64
    );
    println!(
        "      T_cm/stage = {} cy (paper: 26)",
        cycles::t_cm_per_stage(Algo::OneD, m, n, k, 2, &prm) as u64
    );
    println!(
        "      T_cp/warp  = {} cy (paper: 8)",
        cycles::t_cp_per_warp_stage(Algo::OneD, m, n, k, 2, &prm) as u64
    );
    println!(
        "      T_all      = {} cy (paper: 60)\n",
        cycles::t_all(Algo::OneD, m, n, k, 2, &prm) as u64
    );

    // --- §4.4 / §4.5 worked examples -------------------------------------
    println!("§4.4  2D worked example (p=4): V_cm = {} B, T_cm = {} cy, T_all = {} cy (paper: 1024, 30, 68)",
        cycles::v_cm_per_stage(Algo::TwoD, m, n, k, 4, prm.s_e) as u64,
        cycles::t_cm_per_stage(Algo::TwoD, m, n, k, 4, &prm) as u64,
        cycles::t_all(Algo::TwoD, m, n, k, 4, &prm) as u64);
    println!("§4.5  3D worked example (p=8): V_cm = {} B, T_cm = {} cy, T_all = {} cy (paper: 1024, 30, 68)\n",
        cycles::v_cm_per_stage(Algo::ThreeD, m, n, k, 8, prm.s_e) as u64,
        cycles::t_cm_per_stage(Algo::ThreeD, m, n, k, 8, &prm) as u64,
        cycles::t_all(Algo::ThreeD, m, n, k, 8, &prm) as u64);

    // --- §4.7 register example -------------------------------------------
    // "storing three 128×128 matrices in FP64 ... with eight warps
    //  requires 384 registers per thread, exceeding the hardware limit".
    let regs = 3 * 128 * 128 * 2 / 256;
    println!("§4.7  Register example: 3·128·128·2 ÷ 256 = {regs} regs/thread > 255 ✓");
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64).with_warps(8);
    let a = Matrix::seeded_uniform(128, 128, 1);
    let b = Matrix::seeded_uniform(128, 128, 2);
    match gemm(&dev, &cfg, &a, &b) {
        Err(e) => println!("      simulator agrees: {e}"),
        Ok(_) => println!("      (unexpectedly fit — check the register model!)"),
    }
    // The fallback: more warps shrink every per-warp fragment, and the
    // §4.7 slicing parks the rest in shared memory.
    let sliced = KamiConfig::new(Algo::OneD, Precision::Fp64)
        .with_warps(16)
        .with_smem_fraction(0.5);
    match gemm(&dev, &sliced, &a, &b) {
        Ok(r) => println!(
            "      fallback (16 warps, 50% parked): fits at {} regs/thread, {:.0} cycles\n",
            r.report.max_registers().measured_regs,
            r.report.cycles
        ),
        Err(e) => println!("      sliced run failed: {e}\n"),
    }

    // --- §5.6.2: measured vs theory ---------------------------------------
    println!("§5.6.2 Measured vs theoretical cycles (64x64x64 FP16, 4 warps, GH200):");
    let prm16 = ModelParams::from_device(&dev, Precision::Fp16).expect("FP16");
    for algo in [Algo::OneD, Algo::TwoD] {
        let cfg = KamiConfig::new(algo, Precision::Fp16).with_warps(4);
        let res = gemm(
            &dev,
            &cfg,
            &a.submatrix(0, 0, 64, 64),
            &b.submatrix(0, 0, 64, 64),
        )
        .expect("runs");
        println!(
            "      {}: comm {:.0} (theory {:.0}), compute {:.0} (theory {:.0})",
            algo.label(),
            res.report.totals.comm,
            cycles::t_all_comm(algo, 64, 64, 64, 4, &prm16),
            res.report.totals.compute,
            cycles::t_all_compute(64, 64, 64, &prm16),
        );
    }
    println!(
        "\n      Communication matches the formulas exactly; measured compute\n\
      \u{20}      sits at/above theory (instruction-granularity padding) — the\n\
      \u{20}      paper's own Fig 15 observation."
    );
}
