//! Block-sparse attention scores with KAMI SpMM — the "transformer
//! models with block-sparse attention" workload of §3.1.
//!
//! Computes `O = M ⊙ (Q·Kᵀ) · V` for one head, where `M` is a
//! block-sparse attention mask (local window + a few global tokens):
//! the masked score matrix is materialized block-sparsely, row-softmaxed,
//! and applied to `V` with the communication-avoiding SpMM kernel.
//!
//! ```text
//! cargo run --release --example attention_blocksparse
//! ```

use kami::core::{Algo, KamiConfig};
use kami::prelude::*;
use kami::sparse::{gen, spmm::spmm, BlockSparseMatrix};

const SEQ: usize = 128; // sequence length
const HEAD: usize = 64; // head dimension
const BS: usize = 16; // mask block size
const WINDOW: usize = 1; // local attention half-window, in blocks

fn main() {
    let dev = device::gh200();
    let prec = Precision::Fp16;

    let q = Matrix::seeded_uniform(SEQ, HEAD, 100);
    let k = Matrix::seeded_uniform(SEQ, HEAD, 101);
    let v = Matrix::seeded_uniform(SEQ, HEAD, 102);

    // Scores S = Q·Kᵀ / sqrt(d), dense (host-side substrate; a full
    // attention kernel would fuse this — the paper's sparse evaluation
    // targets the masked-matmul stage).
    let scale = 1.0 / (HEAD as f64).sqrt();
    let kt = k.transposed();
    let mut s = kami::core::reference_gemm_f64(&q, &kt);
    for x in s.as_mut_slice() {
        *x *= scale;
    }

    // Block mask: local band + first block column (global tokens).
    let nb = SEQ / BS;
    let masked = Matrix::from_fn(SEQ, SEQ, |r, c| {
        let (br, bc) = (r / BS, c / BS);
        let keep = bc == 0 || br.abs_diff(bc) <= WINDOW;
        if keep {
            s[(r, c)]
        } else {
            0.0
        }
    });

    // Row softmax over the *kept* entries, then store block-sparsely.
    let probs = Matrix::from_fn(SEQ, SEQ, |r, c| {
        let kept = masked[(r, c)] != 0.0 || c / BS == 0 || (r / BS).abs_diff(c / BS) <= WINDOW;
        if !kept {
            return 0.0;
        }
        let row_max = (0..SEQ)
            .filter(|&cc| cc / BS == 0 || (r / BS).abs_diff(cc / BS) <= WINDOW)
            .map(|cc| masked[(r, cc)])
            .fold(f64::MIN, f64::max);
        let denom: f64 = (0..SEQ)
            .filter(|&cc| cc / BS == 0 || (r / BS).abs_diff(cc / BS) <= WINDOW)
            .map(|cc| (masked[(r, cc)] - row_max).exp())
            .sum();
        (masked[(r, c)] - row_max).exp() / denom
    });
    let p_sparse = BlockSparseMatrix::from_dense(&probs, BS, BlockOrder::ZMorton, 0.0);

    println!(
        "block-sparse attention: seq={SEQ}, head={HEAD}, {} of {} blocks kept ({:.0}%)",
        p_sparse.nnz_blocks(),
        nb * nb,
        p_sparse.block_density() * 100.0
    );

    // O = P · V with the CA SpMM (2D grid over the probability blocks).
    let cfg = KamiConfig::new(Algo::TwoD, prec).with_warps(4);
    let res = spmm(&dev, &cfg, &p_sparse, &v).expect("SpMM runs");

    let dense_flops = 2 * SEQ * SEQ * HEAD;
    println!(
        "SpMM: {:.0} cycles, {:.1} TFLOPS on kept blocks; skipped {:.0}% of\n\
         the dense flops ({} vs {})",
        res.report.cycles,
        res.block_tflops(&dev),
        100.0 * (1.0 - res.useful_flops as f64 / dense_flops as f64),
        res.useful_flops,
        dense_flops,
    );

    // Validate against the dense reference.
    let want = kami::core::reference_gemm_f64(&probs, &v);
    let err = res.c.rel_frobenius_error(&want);
    println!("output rel error vs dense FP64 reference: {err:.2e}");
    assert!(err < 5e-3);

    // Bonus: random 50% sparsity, the paper's §5.5 configuration.
    let a50 = gen::paper_sparse_workload(SEQ, BS, BlockOrder::ZMorton, 42);
    let r50 = spmm(&dev, &cfg, &a50, &v).expect("50% SpMM");
    println!(
        "50%-random-sparsity reference point (Fig 13 setup): {:.1} TFLOPS",
        r50.block_tflops(&dev)
    );
}
