//! Block-Jacobi iteration built on KAMI's batched GEMM — the
//! "block-wise scientific solver" workload the paper's introduction
//! motivates (§3.1).
//!
//! Solves `A x = rhs` for a block-diagonally-dominant system by
//! splitting `A = D + R` (D = dense diagonal blocks) and iterating
//! `x ← D⁻¹(rhs − R·x)`. Every iteration's `R·x` sweep is a batch of
//! independent small GEMMs — exactly the throughput-critical pattern
//! batched KAMI accelerates.
//!
//! ```text
//! cargo run --release --example block_solver
//! ```

use kami::core::{batched_gemm, Algo, KamiConfig};
use kami::prelude::*;

const NB: usize = 8; // block grid: NB x NB blocks
const BS: usize = 16; // block size

fn main() {
    let dev = device::gh200();
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64).with_warps(4);

    // Build a block-diagonally-dominant system.
    let n = NB * BS;
    let mut a = Matrix::seeded_uniform(n, n, 7);
    for i in 0..n {
        let row_sum: f64 = (0..n).map(|j| a[(i, j)].abs()).sum();
        a[(i, i)] += row_sum; // strict diagonal dominance
    }
    let x_true = Matrix::seeded_uniform(n, 1, 9);
    let rhs = kami::core::reference_gemm_f64(&a, &x_true);

    // Pre-invert the diagonal blocks (tiny Gauss-Jordan on the host —
    // the solver substrate; the GEMM sweeps are the accelerated part).
    let d_inv: Vec<Matrix> = (0..NB)
        .map(|b| invert(&a.submatrix(b * BS, b * BS, BS, BS)))
        .collect();

    let mut x = Matrix::zeros(n, 1);
    println!(
        "block-Jacobi on {}x{} ({}x{} blocks of {})",
        n, n, NB, NB, BS
    );
    let mut total_cycles = 0.0;
    for iter in 0..60 {
        // R·x as a batch of off-diagonal block GEMVs, padded to block
        // width so the tensor-core path is exercised (x broadcast into a
        // BS-wide tile; column 0 is the answer).
        let mut pairs = Vec::new();
        let mut coords = Vec::new();
        for bi in 0..NB {
            for bj in 0..NB {
                if bi == bj {
                    continue;
                }
                let blk = a.submatrix(bi * BS, bj * BS, BS, BS);
                let xj = x.submatrix(bj * BS, 0, BS, 1);
                let xt = Matrix::from_fn(BS, BS, |r, c| if c == 0 { xj[(r, 0)] } else { 0.0 });
                pairs.push((blk, xt));
                coords.push(bi);
            }
        }
        let batch = batched_gemm(&dev, &cfg, &pairs).expect("batched sweep");
        total_cycles += batch.total_cycles;

        // x_new = D_inv * (rhs - R x) per block row.
        let mut x_new = Matrix::zeros(n, 1);
        for bi in 0..NB {
            let mut acc = Matrix::from_fn(BS, 1, |r, _| rhs[(bi * BS + r, 0)]);
            for (out, &row) in batch.outputs.iter().zip(&coords) {
                if row == bi {
                    for r in 0..BS {
                        acc[(r, 0)] -= out[(r, 0)];
                    }
                }
            }
            let xb = kami::core::reference_gemm_f64(&d_inv[bi], &acc);
            x_new.set_submatrix(bi * BS, 0, &xb);
        }
        x = x_new;

        if iter % 10 == 0 || iter == 59 {
            let err = x.rel_frobenius_error(&x_true);
            println!("  iter {iter:>2}: rel error {err:.3e}");
        }
    }
    let err = x.rel_frobenius_error(&x_true);
    println!(
        "\nconverged to rel error {err:.3e}; GEMM sweeps consumed {:.2} Mcycles\n\
         of simulated device time ({:.1} µs on {})",
        total_cycles / 1e6,
        total_cycles / dev.clock_hz() * 1e6,
        dev.name
    );
    assert!(err < 1e-6, "solver must converge");
}

/// Gauss-Jordan inverse of a small well-conditioned block.
fn invert(m: &Matrix) -> Matrix {
    let nn = m.rows();
    let mut aug = Matrix::from_fn(nn, 2 * nn, |r, c| {
        if c < nn {
            m[(r, c)]
        } else if c - nn == r {
            1.0
        } else {
            0.0
        }
    });
    for col in 0..nn {
        // Partial pivot.
        let piv = (col..nn)
            .max_by(|&x, &y| {
                aug[(x, col)]
                    .abs()
                    .partial_cmp(&aug[(y, col)].abs())
                    .unwrap()
            })
            .unwrap();
        if piv != col {
            for c in 0..2 * nn {
                let t = aug[(col, c)];
                aug[(col, c)] = aug[(piv, c)];
                aug[(piv, c)] = t;
            }
        }
        let d = aug[(col, col)];
        for c in 0..2 * nn {
            aug[(col, c)] /= d;
        }
        for r in 0..nn {
            if r != col {
                let f = aug[(r, col)];
                for c in 0..2 * nn {
                    aug[(r, c)] -= f * aug[(col, c)];
                }
            }
        }
    }
    aug.submatrix(0, nn, nn, nn)
}
