//! One graph-neural-network layer on KAMI: `H' = ReLU(Â·H·W + H·W_res)`
//! — the "batched neural network inference" + sparse workload family the
//! paper's introduction motivates (§3.1), combining three library
//! features:
//!
//! * the dense projection `H·W` with the block-level GEMM,
//! * the sparse aggregation `Â·(HW)` with the CA SpMM (Â is the
//!   block-sparse normalized adjacency),
//! * the residual blend with the BLAS epilogue `gemm_scaled`
//!   (`C = α·H·W_res + β·C`).
//!
//! ```text
//! cargo run --release --example gnn_layer
//! ```

use kami::core::{gemm_auto, gemm_scaled, Algo, KamiConfig};
use kami::prelude::*;
use kami::sparse::{spmm::spmm, BlockSparseMatrix};

const NODES: usize = 128;
const FEATS: usize = 64;
const BS: usize = 16;

fn main() {
    let dev = device::gh200();
    let prec = Precision::Fp16;
    let cfg = KamiConfig::new(Algo::OneD, prec);

    // Features and weights.
    let h = Matrix::seeded_uniform(NODES, FEATS, 1);
    let w = Matrix::seeded_uniform(FEATS, FEATS, 2);
    let w_res = Matrix::seeded_uniform(FEATS, FEATS, 3);

    // Block-sparse adjacency: a ring of communities (diagonal blocks +
    // neighbours), row-normalized.
    let nb = NODES / BS;
    let adj_dense = Matrix::from_fn(NODES, NODES, |r, c| {
        let (br, bc) = (r / BS, c / BS);
        let linked = br == bc || (br + 1) % nb == bc || (bc + 1) % nb == br;
        if linked {
            1.0 / (3 * BS) as f64
        } else {
            0.0
        }
    });
    let adj = BlockSparseMatrix::from_dense(&adj_dense, BS, BlockOrder::ZMorton, 0.0);
    println!(
        "GNN layer: {} nodes, {} features, adjacency {}/{} blocks kept",
        NODES,
        FEATS,
        adj.nnz_blocks(),
        nb * nb
    );

    // 1. Dense projection HW.
    let hw = gemm_auto(&dev, &cfg, &h, &w).expect("H·W");
    // 2. Sparse aggregation Â(HW).
    let agg = spmm(&dev, &cfg, &adj, &hw.c).expect("Â·(HW)");
    // 3. Residual blend: out = 0.5·(H·W_res) + 1.0·agg.
    let blended = gemm_scaled(&dev, &cfg, 0.5, &h, &w_res, 1.0, &agg.c).expect("residual");
    // 4. ReLU on the host (elementwise epilogue).
    let out = Matrix::from_fn(NODES, FEATS, |r, c| blended.c[(r, c)].max(0.0));

    let total_cycles = hw.report.cycles + agg.report.cycles + blended.report.cycles;
    println!(
        "pipeline: {:.0} + {:.0} + {:.0} = {:.0} simulated cycles ({:.1} µs on {})",
        hw.report.cycles,
        agg.report.cycles,
        blended.report.cycles,
        total_cycles,
        total_cycles / dev.clock_hz() * 1e6,
        dev.name
    );

    // Validate against a plain f64 pipeline.
    let hw_ref = kami::core::reference_gemm_f64(&h, &w);
    let agg_ref = kami::core::reference_gemm_f64(&adj_dense, &hw_ref);
    let res_ref = kami::core::reference_gemm_f64(&h, &w_res);
    let want = Matrix::from_fn(NODES, FEATS, |r, c| {
        (0.5 * res_ref[(r, c)] + agg_ref[(r, c)]).max(0.0)
    });
    let err = out.rel_frobenius_error(&want);
    println!("output rel error vs f64 pipeline: {err:.2e}");
    assert!(err < 2e-2, "GNN layer must match the reference");

    println!(
        "\nsparse aggregation skipped {:.0}% of the dense flops; the\n\
         residual epilogue charged the C re-read ({} extra global bytes).",
        100.0 * (1.0 - agg.useful_flops as f64 / (2 * NODES * NODES * FEATS) as f64),
        blended.report.gmem_bytes_read - hw.report.gmem_bytes_read,
    );
}
