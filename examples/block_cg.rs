//! Block conjugate gradient with multiple right-hand sides on KAMI SpMM
//! — the CA-iterative-solver workload family of the paper's related work
//! (§6: "iterative solvers"), where the per-iteration sparse product is
//! exactly the kernel KAMI accelerates.
//!
//! Solves `A·X = B` for `s` right-hand sides simultaneously: block CG
//! amortizes one SpMM over all `s` vectors per iteration (the classic
//! reason block methods fit tensor cores — a single RHS would be an
//! SpMV, too thin for MMA units).
//!
//! ```text
//! cargo run --release --example block_cg
//! ```

use kami::core::{reference_gemm_f64, Algo, KamiConfig};
use kami::prelude::*;
use kami::sparse::{spmm::spmm, BlockSparseMatrix};

const N: usize = 128;
const RHS: usize = 16;
const BS: usize = 16;

fn main() {
    let dev = device::gh200();
    // FP64 for the solver: CG needs accurate inner products.
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64).with_warps(4);

    // SPD block-banded system: A = L·Lᵀ + n·I with L block-banded.
    let l = Matrix::from_fn(N, N, |r, c| {
        let (br, bc) = (r / BS, c / BS);
        if bc <= br && br - bc <= 1 {
            Matrix::seeded_uniform(N, N, 900)[(r, c)]
        } else {
            0.0
        }
    });
    let mut a_dense = reference_gemm_f64(&l, &l.transposed());
    for i in 0..N {
        a_dense[(i, i)] += N as f64;
    }
    let a = BlockSparseMatrix::from_dense(&a_dense, BS, BlockOrder::ZMorton, 1e-12);
    println!(
        "block CG: {}x{} SPD system, {}/{} blocks ({}% dense), {} RHS",
        N,
        N,
        a.nnz_blocks(),
        (N / BS) * (N / BS),
        (100.0 * a.block_density()) as u32,
        RHS
    );

    let x_true = Matrix::seeded_uniform(N, RHS, 901);
    let b = reference_gemm_f64(&a_dense, &x_true);

    // Block CG (host-side s×s reductions, device-simulated SpMM).
    let mut x = Matrix::zeros(N, RHS);
    let mut r = b.clone();
    let mut p = r.clone();
    let mut spmm_cycles = 0.0;
    let mut iters = 0;
    for it in 0..60 {
        iters = it + 1;
        // Q = A·P on the simulated device (pad P to a block multiple of
        // columns for the MMA path — RHS = 16 already aligns).
        let q_res = spmm(&dev, &cfg, &a, &p).expect("SpMM runs");
        spmm_cycles += q_res.report.cycles;
        let q = q_res.c;

        // alpha = (PᵀQ)⁻¹ (PᵀR) — s×s solves on the host.
        let ptq = reference_gemm_f64(&p.transposed(), &q);
        let ptr = reference_gemm_f64(&p.transposed(), &r);
        let alpha = solve_small(&ptq, &ptr);

        // X += P·alpha; R -= Q·alpha.
        let pa = reference_gemm_f64(&p, &alpha);
        let qa = reference_gemm_f64(&q, &alpha);
        for i in 0..N {
            for j in 0..RHS {
                x[(i, j)] += pa[(i, j)];
                r[(i, j)] -= qa[(i, j)];
            }
        }

        let res_norm = r.frobenius_norm() / b.frobenius_norm();
        if it % 5 == 0 {
            println!("  iter {it:>2}: relative residual {res_norm:.3e}");
        }
        if res_norm < 1e-10 {
            println!("  iter {it:>2}: relative residual {res_norm:.3e} — converged");
            break;
        }

        // beta = (PᵀQ)⁻¹ (QᵀR)ᵀ-ish: classic block update
        // P = R + P·beta with beta = (PᵀQ)⁻¹(−QᵀR).
        let qtr = reference_gemm_f64(&q.transposed(), &r);
        let beta = solve_small(&ptq, &qtr);
        let pb = reference_gemm_f64(&p, &beta);
        p = Matrix::from_fn(N, RHS, |i, j| r[(i, j)] - pb[(i, j)]);
    }

    let err = x.rel_frobenius_error(&x_true);
    println!(
        "\nsolution error {err:.3e} after {iters} iterations;\n\
         SpMM consumed {:.2} Mcycles of simulated device time ({:.1} µs on {})",
        spmm_cycles / 1e6,
        spmm_cycles / dev.clock_hz() * 1e6,
        dev.name
    );
    assert!(err < 1e-8, "block CG must converge on an SPD system");
}

/// Solve the small dense system `M·X = B` (s×s) by Gauss elimination
/// with partial pivoting.
fn solve_small(m: &Matrix, b: &Matrix) -> Matrix {
    let n = m.rows();
    let rhs = b.cols();
    let mut aug = Matrix::from_fn(
        n,
        n + rhs,
        |r, c| {
            if c < n {
                m[(r, c)]
            } else {
                b[(r, c - n)]
            }
        },
    );
    for col in 0..n {
        let piv = (col..n)
            .max_by(|&x, &y| {
                aug[(x, col)]
                    .abs()
                    .partial_cmp(&aug[(y, col)].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        if piv != col {
            for c in 0..n + rhs {
                let t = aug[(col, c)];
                aug[(col, c)] = aug[(piv, c)];
                aug[(piv, c)] = t;
            }
        }
        let d = aug[(col, col)];
        for c in col..n + rhs {
            aug[(col, c)] /= d;
        }
        for r in 0..n {
            if r != col {
                let f = aug[(r, col)];
                if f != 0.0 {
                    for c in col..n + rhs {
                        aug[(r, c)] -= f * aug[(col, c)];
                    }
                }
            }
        }
    }
    aug.submatrix(0, n, n, rhs)
}
