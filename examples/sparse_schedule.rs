//! Sparse device scheduling (`kami::sched::sparse`): nnz-weighted
//! Stream-K for SpMM on a power-law skewed matrix.
//!
//! Builds a scale-free block-sparse matrix (first block row dense, tail
//! rows nearly empty), derives the nnz-weighted work stream from its
//! BSR structure, and compares quantized data-parallel placement
//! against the nnz-aware Stream-K split. Then runs the scheduled SpMM
//! entry point, which returns the schedule, the per-SM trace, and a
//! numeric result bit-identical to the unscheduled kernel.
//!
//! ```text
//! cargo run --release --example sparse_schedule
//! ```

use kami::core::{Algo, KamiConfig};
use kami::prelude::*;
use kami::sparse::gen::power_law_block_sparse;
use kami::sparse::spmm::spmm;

fn main() {
    let dev = device::gh200();
    let plans = PlanCache::new();

    // Scale-free sparsity: block row i keeps ~nb·(i+1)^-1.2 blocks.
    let a = power_law_block_sparse(1024, 16, 1.2, BlockOrder::RowMajor, 7);
    let work = SparseWork::from_spmm(&a, 64, Precision::Fp16);
    println!(
        "power-law SpMM stream: {} row items, {} nonzero k-iterations, max/mean skew {:.1}",
        work.len(),
        work.total_nnz(),
        work.max_nnz() as f64 * work.len() as f64 / work.total_nnz() as f64,
    );

    // Data-parallel pays the skew (one SM draws the dense row); the
    // nnz split spreads those iterations across the device.
    for d in [Decomposition::DataParallel, Decomposition::StreamK] {
        let r = Scheduler::new(&dev)
            .with_decomposition(d)
            .run_sparse(&work, &plans)
            .expect("sparse stream schedules");
        println!(
            "{:>13}: {:>7.0} cycles (ran {}, tail imbalance {:.1}%)",
            d.label(),
            r.schedule.makespan_cycles,
            r.schedule.decomposition.label(),
            r.schedule.tail_imbalance * 100.0
        );
    }

    // The scheduled entry point: schedule + trace + numeric result in
    // one call, bit-identical to the unscheduled kernel.
    let small = power_law_block_sparse(128, 16, 1.2, BlockOrder::RowMajor, 7);
    let b = Matrix::seeded_uniform(128, 64, 8);
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16).with_warps(8);
    let scheduled =
        spmm_scheduled(&Scheduler::new(&dev), &cfg, &small, &b, &plans).expect("scheduled spmm");
    let plain = spmm(&dev, &cfg, &small, &b).expect("plain spmm");
    println!(
        "scheduled SpMM: {:.0} cycles predicted, {} trace events, max |Δ| vs unscheduled = {}",
        scheduled.report.schedule.makespan_cycles,
        scheduled.trace.events.len(),
        scheduled.result.c.max_abs_diff(&plain.c)
    );

    let out = "sparse_schedule_trace.json";
    std::fs::write(out, scheduled.trace.to_chrome_json()).expect("write trace");
    println!("wrote {out} — one track per SM, fixup traffic as gmem events");
}
