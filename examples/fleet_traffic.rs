//! Multi-producer traffic across a heterogeneous fleet.
//!
//! A [`FleetServer`] of all four Table 3 device classes serves three
//! producer threads. Each replica runs its own dispatcher thread on its
//! own simulated clock; the router places every request on the replica
//! whose current horizon plus predicted makespan finishes earliest,
//! except one producer that pins its work to a class with
//! `device_affinity`. Numerics are pinned fleet-wide to the numeric
//! device, so placement moves cycles, never bytes.
//!
//! ```text
//! cargo run --release --example fleet_traffic
//! ```

use kami::prelude::*;
use kami::serve::{FleetConfig, ServerConfig};

fn main() {
    let fleet = FleetServer::with_config(
        FleetSpec::table3(1),
        FleetConfig {
            server: ServerConfig {
                queue_capacity: 32,
                ..ServerConfig::default()
            },
            policy: RoutingPolicy::EarliestCompletion,
        },
    );

    std::thread::scope(|s| {
        // One dispatcher per replica, each on its own tick clock.
        for replica in fleet.replicas() {
            s.spawn(|| replica.server().run_dispatcher());
        }

        let producers: Vec<_> = (0..3u64)
            .map(|p| {
                let fleet = &fleet;
                s.spawn(move || {
                    let mut done = Vec::new();
                    for i in 0..4u64 {
                        let seed = p * 100 + i;
                        // Producer 0 sends tall-skinny panels, producer 1
                        // square tiles; producer 2 pins small squares to
                        // the Intel class regardless of cost.
                        let (m, n, k) = match p {
                            0 => (4096, 16, 16),
                            1 => (256, 256, 64),
                            _ => (32, 32, 32),
                        };
                        let a = Matrix::seeded_uniform(m, k, seed);
                        let b = Matrix::seeded_uniform(k, n, seed + 1);
                        let mut req = ServeRequest::gemm(a, b, Precision::Fp16);
                        if p == 2 {
                            req = req.with_affinity("Intel Max 1100");
                        }
                        let ticket = fleet.submit(req).expect("under capacity");
                        let device = ticket.device.clone();
                        let replica = ticket.replica;
                        let c = ticket.wait().expect("feasible");
                        done.push((device, replica, m, n, k, c));
                    }
                    done
                })
            })
            .collect();

        let mut completions = Vec::new();
        for p in producers {
            completions.extend(p.join().expect("producer panicked"));
        }
        fleet.shutdown();

        completions.sort_by_key(|(_, _, _, _, _, c)| c.id);
        println!(
            "{:<6} {:<18} {:<9} {:<14} {:>12} {:>12}",
            "id", "device", "replica", "shape", "queue cyc", "service cyc"
        );
        for (device, replica, m, n, k, c) in &completions {
            println!(
                "{:<6} {:<18} {:<9} {:<14} {:>12.0} {:>12.0}",
                c.id,
                device,
                replica,
                format!("{m}x{n}x{k}"),
                c.queue_cycles,
                c.service_cycles
            );
        }
    });

    let m = fleet.metrics();
    println!(
        "\nfleet rollup: {} submitted, {} completed, {} routed ({} spilled); \
         makespan {:.3e} simulated seconds",
        m.submitted(),
        m.completed(),
        m.router.routed,
        m.router.spilled,
        m.makespan_secs()
    );
    println!(
        "completion latency: p50 {} cycles, p99 {} cycles",
        m.completion_cycles.p50(),
        m.completion_cycles.p99()
    );
    println!(
        "\n{:<18} {:<9} {:>10} {:>14} {:>12}",
        "device", "replica", "completed", "clock (cyc)", "utilization"
    );
    for r in &m.replicas {
        println!(
            "{:<18} {:<9} {:>10} {:>14.0} {:>12.2}",
            r.device,
            r.replica,
            r.metrics.completed,
            r.clock_cycles,
            r.utilization()
        );
    }

    let prom = fleet.to_prometheus();
    println!("\nPrometheus excerpt (device/replica labels):");
    for line in prom
        .lines()
        .filter(|l| l.contains("device=") || l.contains("_p"))
        .take(8)
    {
        println!("  {line}");
    }
}
