//! Multi-producer service traffic through kami-serve.
//!
//! Four producer threads submit mixed dense/sparse requests while a
//! dedicated dispatcher thread ticks the server on the simulated
//! clock; producers block on their tickets like RPC clients. Prints
//! the per-request completion paths, the service metrics, and an
//! excerpt of the Prometheus export.
//!
//! ```text
//! cargo run --release --example serve_traffic
//! ```

use kami::prelude::*;
use kami::serve::ServerConfig;

fn main() {
    let dev = device::gh200();
    let server = Server::with_config(
        &dev,
        ServerConfig {
            queue_capacity: 32,
            capture_trace: true,
            ..ServerConfig::default()
        },
    );

    std::thread::scope(|s| {
        // The dispatcher: parks when idle, returns after shutdown once
        // the queue is dry.
        s.spawn(|| server.run_dispatcher());

        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let server = &server;
                s.spawn(move || {
                    let mut done = Vec::new();
                    for i in 0..5u64 {
                        let seed = p * 100 + i;
                        let req = if i == 4 {
                            // One sparse rider per producer.
                            let a = kami::sparse::gen::random_block_sparse(
                                64,
                                64,
                                16,
                                0.4,
                                BlockOrder::ZMorton,
                                seed,
                            );
                            let b = Matrix::seeded_uniform(64, 32, seed + 1);
                            ServeRequest::spmm(a, b, KamiConfig::new(Algo::TwoD, Precision::Fp16))
                        } else {
                            let a = Matrix::seeded_uniform(64, 64, seed);
                            let b = Matrix::seeded_uniform(64, 64, seed + 1);
                            ServeRequest::gemm(a, b, Precision::Fp16)
                        };
                        let ticket = server.submit(req).expect("under capacity");
                        done.push(ticket.wait().expect("feasible"));
                    }
                    done
                })
            })
            .collect();

        let mut completions: Vec<Completed> = Vec::new();
        for p in producers {
            completions.extend(p.join().expect("producer panicked"));
        }
        server.shutdown();

        completions.sort_by_key(|c| c.id);
        println!(
            "{:<6} {:<10} {:<16} {:>12} {:>12}",
            "id", "kind", "via", "queue cyc", "service cyc"
        );
        for c in &completions {
            println!(
                "{:<6} {:<10} {:<16} {:>12.0} {:>12.0}",
                c.id,
                c.output.label(),
                c.via.label(),
                c.queue_cycles,
                c.service_cycles
            );
        }
    });

    let m = server.metrics();
    println!(
        "\n{} submitted, {} completed over {} ticks; coalesce factor {:.1}, clock {:.0} cycles",
        m.submitted,
        m.completed,
        m.ticks,
        m.coalesce_factor(),
        server.clock()
    );

    let prom = server.to_prometheus();
    println!("\nPrometheus excerpt:");
    for line in prom.lines().filter(|l| !l.starts_with('#')).take(6) {
        println!("  {line}");
    }

    let trace = server.merged_trace();
    println!(
        "\nmerged Chrome trace: {} events spanning {:.0} simulated cycles \
         (serialize with trace.to_chrome_json())",
        trace.events.len(),
        trace.total_cycles()
    );
}
