//! Quickstart: multiply two 64×64 FP16 matrices with each KAMI algorithm
//! on the simulated GH200 and print the cycle-accurate report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kami::prelude::*;

fn main() {
    let dev = device::gh200();
    let a = Matrix::seeded_uniform(64, 64, 1);
    let b = Matrix::seeded_uniform(64, 64, 2);

    println!("C = A·B, 64x64x64 FP16 on {}\n", dev.name);
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>12} {:>8}",
        "algorithm", "warps", "cycles", "comm(cy)", "V_cm(bytes)", "TFLOPS"
    );

    let mut reference: Option<Matrix> = None;
    for algo in [Algo::OneD, Algo::TwoD, Algo::ThreeD] {
        let cfg = KamiConfig::new(algo, Precision::Fp16);
        let res = gemm_auto(&dev, &cfg, &a, &b).expect("gemm runs");
        println!(
            "{:<10} {:>8} {:>10.0} {:>10.0} {:>12} {:>8.1}",
            algo.label(),
            cfg.warps,
            res.report.cycles,
            res.report.totals.comm,
            res.report.comm_volume(),
            res.block_tflops(&dev),
        );
        // All three algorithms compute the same product.
        match &reference {
            None => reference = Some(res.c),
            Some(c0) => assert!(res.c.rel_frobenius_error(c0) < 1e-3),
        }
    }

    println!(
        "\nKAMI-1D broadcasts only B (V_cm = p·kn·s_e); 2D/3D broadcast both\n\
         operands but in fewer stages — the communication-avoiding trade-off\n\
         of the paper's Formulas 1-12."
    );
}
