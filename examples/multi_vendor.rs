//! The same block GEMM across all four device models of Table 3 —
//! KAMI's cross-vendor portability claim (CUDA / HIP / SYCL in the
//! paper; four parameterizations of one simulator here).
//!
//! ```text
//! cargo run --release --example multi_vendor
//! ```

use kami::core::{gemm_auto, Algo, KamiConfig};
use kami::prelude::*;
use kami::sim::native_shape;

fn main() {
    let n = 64;
    let a = Matrix::seeded_uniform(n, n, 5);
    let b = Matrix::seeded_uniform(n, n, 6);

    println!("64x64x64 FP16 block GEMM, KAMI-1D, across Table 3 devices\n");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>9} {:>8}",
        "device", "mma shape", "O_tc", "cycles", "comm(cy)", "TFLOPS"
    );

    let mut reference: Option<Matrix> = None;
    for dev in DeviceSpec::all_evaluated() {
        let shape = native_shape(dev.vendor, Precision::Fp16).expect("FP16 everywhere");
        let otc = dev.ops_per_cycle_per_tc(Precision::Fp16).unwrap();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
        let res = gemm_auto(&dev, &cfg, &a, &b).expect("gemm runs");
        println!(
            "{:<18} {:>10} {:>10.0} {:>10.0} {:>9.0} {:>8.1}",
            dev.name,
            shape.label(),
            otc,
            res.report.cycles,
            res.report.totals.comm,
            res.block_tflops(&dev),
        );
        // Same numerics regardless of vendor parameters (all FP16 paths
        // quantize identically; only the cycle model differs).
        match &reference {
            None => reference = Some(res.c),
            Some(c0) => assert_eq!(res.c.max_abs_diff(c0), 0.0),
        }
    }

    println!(
        "\nThroughput tracks each device's tensor throughput and shared-memory\n\
         bandwidth (Intel's 16 banks halve B_sm — Fig 8(g)'s context), while\n\
         the results are bit-identical: the algorithm is vendor-neutral."
    );
}
