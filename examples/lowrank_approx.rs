//! Low-rank reconstruction with the KAMI low-rank kernel — the
//! "low-rank approximation" workload of §3.1 and the Fig 11 evaluation.
//!
//! Builds a matrix with rapidly decaying spectrum, extracts a rank-k
//! factorization (power-iteration sketch on the host), and reconstructs
//! `A ≈ U·V` with `kami::core::lowrank_gemm`, comparing cost against
//! running the same product through the general square-GEMM kernel.
//!
//! ```text
//! cargo run --release --example lowrank_approx
//! ```

use kami::core::{gemm_auto, lowrank_gemm, Algo, KamiConfig};
use kami::prelude::*;

const N: usize = 128;
const RANK: usize = 16;

fn main() {
    let dev = device::gh200();
    let prec = Precision::Fp16;

    // A = Σ_i w_i · u_i v_iᵀ with geometrically decaying weights: an
    // almost-rank-RANK matrix.
    let us = Matrix::seeded_uniform(N, RANK + 8, 1);
    let vs = Matrix::seeded_uniform(RANK + 8, N, 2);
    let a = Matrix::from_fn(N, N, |r, c| {
        (0..RANK + 8)
            .map(|i| 0.5f64.powi(i as i32) * us[(r, i)] * vs[(i, c)])
            .sum()
    });

    // Rank-RANK factors via a few rounds of orthogonal iteration.
    let (u, v) = sketch_factors(&a, RANK);
    let approx = kami::core::reference_gemm_f64(&u, &v);
    let trunc_err = approx.rel_frobenius_error(&a);
    println!("rank-{RANK} factorization of a {N}x{N} matrix: truncation error {trunc_err:.2e}");

    // Reconstruct with the low-rank kernel (column-split 1D).
    let cfg = KamiConfig::new(Algo::OneD, prec).with_warps(4);
    let lr = lowrank_gemm(&dev, &cfg, &u, &v).expect("low-rank gemm");
    println!(
        "lowrank_gemm:    {:>8.0} cycles  {:>6.1} TFLOPS  V_cm = {} B (broadcasts U only)",
        lr.report.cycles,
        lr.block_tflops(&dev),
        lr.report.comm_volume()
    );

    // Same product through the general k-splitting kernel, for contrast.
    let gen = gemm_auto(&dev, &cfg, &u, &v).expect("general gemm");
    println!(
        "general gemm:    {:>8.0} cycles  {:>6.1} TFLOPS  V_cm = {} B",
        gen.report.cycles,
        gen.block_tflops(&dev),
        gen.report.comm_volume()
    );
    println!(
        "low-rank kernel advantage: {:.2}x fewer cycles (k stays MMA-aligned,\n\
         only the thin factor is broadcast — §5.3's explanation)",
        gen.report.cycles / lr.report.cycles
    );

    // Numerical sanity: FP16 reconstruction close to the f64 product.
    let err = lr.c.rel_frobenius_error(&approx);
    println!("FP16 reconstruction error vs exact product: {err:.2e}");
    assert!(err < 1e-2);
    assert!(lr.report.cycles <= gen.report.cycles);
}

/// Crude rank-k factorization: B = (A·Ω) orthonormalized by Gram-Schmidt,
/// V = Bᵀ·A. Good enough for a decaying spectrum.
fn sketch_factors(a: &Matrix, k: usize) -> (Matrix, Matrix) {
    let omega = Matrix::seeded_uniform(a.cols(), k, 3);
    let mut b = kami::core::reference_gemm_f64(a, &omega);
    // Two passes of modified Gram-Schmidt.
    for _ in 0..2 {
        for j in 0..k {
            for i in 0..j {
                let dot: f64 = (0..b.rows()).map(|r| b[(r, i)] * b[(r, j)]).sum();
                for r in 0..b.rows() {
                    let bi = b[(r, i)];
                    b[(r, j)] -= dot * bi;
                }
            }
            let norm: f64 = (0..b.rows())
                .map(|r| b[(r, j)] * b[(r, j)])
                .sum::<f64>()
                .sqrt();
            for r in 0..b.rows() {
                b[(r, j)] /= norm.max(1e-300);
            }
        }
    }
    let v = kami::core::reference_gemm_f64(&b.transposed(), a);
    (b, v)
}
