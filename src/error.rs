//! The workspace-level error facade: one enum any `kami` caller can
//! hold, `?`-convert into, and walk down a [`std::error::Error::source`]
//! chain from, regardless of which layer rejected the work.
//!
//! Layer errors stay typed in their own crates ([`KamiError`],
//! [`SimError`], [`SchedError`], [`SparseError`], [`MtxError`],
//! [`ServeError`]); this enum is the top of the chain for applications
//! that mix layers.

use kami_core::KamiError;
use kami_gpu_sim::SimError;
use kami_sched::SchedError;
use kami_serve::ServeError;
use kami_sparse::{MtxError, SparseError};

/// Any error the KAMI workspace can produce.
#[derive(Debug, Clone)]
pub enum Error {
    /// Engine / algorithm-level rejection ([`kami_core`]).
    Core(KamiError),
    /// Simulator substrate fault ([`kami_gpu_sim`]).
    Sim(SimError),
    /// Device-scheduler rejection ([`kami_sched`]).
    Sched(SchedError),
    /// Block-sparse construction rejection ([`kami_sparse`]).
    Sparse(SparseError),
    /// MatrixMarket parse failure ([`kami_sparse::io`]).
    SparseIo(MtxError),
    /// Service-runtime rejection ([`kami_serve`]).
    Serve(ServeError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Core(e) => write!(f, "core: {e}"),
            Error::Sim(e) => write!(f, "sim: {e}"),
            Error::Sched(e) => write!(f, "sched: {e}"),
            Error::Sparse(e) => write!(f, "sparse: {e}"),
            Error::SparseIo(e) => write!(f, "sparse-io: {e}"),
            Error::Serve(e) => write!(f, "serve: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Sched(e) => Some(e),
            Error::Sparse(e) => Some(e),
            Error::SparseIo(e) => Some(e),
            Error::Serve(e) => Some(e),
        }
    }
}

impl From<KamiError> for Error {
    fn from(e: KamiError) -> Self {
        // A core error that wraps a simulator fault surfaces as `Sim`,
        // so matching on the facade sees the deepest layer.
        match e {
            KamiError::Sim(sim) => Error::Sim(sim),
            other => Error::Core(other),
        }
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<SchedError> for Error {
    fn from(e: SchedError) -> Self {
        Error::Sched(e)
    }
}

impl From<SparseError> for Error {
    fn from(e: SparseError) -> Self {
        Error::Sparse(e)
    }
}

impl From<MtxError> for Error {
    fn from(e: MtxError) -> Self {
        Error::SparseIo(e)
    }
}

impl From<ServeError> for Error {
    fn from(e: ServeError) -> Self {
        Error::Serve(e)
    }
}

/// Workspace-level result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn every_layer_converts_and_chains() {
        let e: Error = KamiError::Unsupported { detail: "x".into() }.into();
        assert!(matches!(e, Error::Core(_)));
        assert!(e.source().is_some());

        let e: Error = SchedError::EmptyStream { kind: "dense" }.into();
        assert!(e.to_string().starts_with("sched:"));

        let e: Error = SparseError::DuplicateBlock {
            block_row: 0,
            block_col: 0,
        }
        .into();
        assert!(matches!(e, Error::Sparse(_)));

        let e: Error = ServeError::ShuttingDown.into();
        assert!(matches!(e, Error::Serve(_)));
        assert!(e.source().is_some());
    }

    #[test]
    fn question_mark_composes_across_layers() {
        fn mixed() -> crate::error::Result<()> {
            kami_sparse::BlockSparseMatrix::try_from_blocks(
                15,
                16,
                4,
                kami_sparse::BlockOrder::RowMajor,
                vec![],
            )?;
            Ok(())
        }
        assert!(matches!(mixed().unwrap_err(), Error::Sparse(_)));
    }
}
