//! # kami
//!
//! Facade crate of the KAMI workspace: communication-avoiding GEMM
//! within a single (simulated) GPU, reproducing Wang et al.,
//! *"KAMI: Communication-Avoiding General Matrix Multiplication within a
//! Single GPU"* (SC '25).
//!
//! Re-exports the four member crates:
//!
//! * [`sim`] — the streaming-multiprocessor simulator substrate
//!   (devices, precisions, warp programs, cycle engine);
//! * [`core`] — the KAMI 1D/2D/3D algorithms, batched/low-rank
//!   interfaces, and the clock-cycle analytic model;
//! * [`sparse`] — Z-Morton block-sparse storage, SpMM, SpGEMM;
//! * [`baselines`] — comparator strategies (cuBLASDx-, CUTLASS-,
//!   cuBLAS-, MAGMA-, SYCL-Bench-style) on the same simulator;
//! * [`sched`] — the device-level work-centric scheduler (data-parallel
//!   vs Stream-K decomposition, shared plan cache, per-SM accounting),
//!   including the nnz-weighted sparse path (`sched::sparse`) that
//!   splits SpMM/SpGEMM streams by nonzero k-iterations;
//! * [`serve`] — the batched GEMM service runtime: bounded admission
//!   queue, tick-based dispatch coalescing compatible requests into
//!   shared work pools, deadlines with retry and degraded-serial
//!   fallback, metrics with a Prometheus export and a merged device
//!   trace;
//! * [`verify`] — the seeded differential cross-check harness tying
//!   engine, closed-form model, scheduler, service runtime, and sparse
//!   kernels against each other, with case shrinking to minimal
//!   reproducers.
//!
//! Every layer's error type converts into the workspace-level
//! [`Error`] facade, so applications that mix layers can `?` across
//! them and walk one [`std::error::Error::source`] chain.
//!
//! See `examples/quickstart.rs` for a first program,
//! `examples/device_schedule.rs` for the device-level scheduler, and
//! `examples/serve_traffic.rs` for the service runtime.

pub use kami_baselines as baselines;
pub use kami_core as core;
pub use kami_gpu_sim as sim;
pub use kami_sched as sched;
pub use kami_serve as serve;
pub use kami_sparse as sparse;
pub use kami_verify as verify;

pub mod error;
pub use error::{Error, Result};

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::error::Error;
    pub use kami_core::{
        batched_gemm, gemm, gemm_auto, gemm_padded, lowrank_gemm, Algo, GemmRequest, GemmResponse,
        KamiConfig, KamiError, Op,
    };
    pub use kami_gpu_sim::{device, BackendKind, DeviceSpec, Matrix, Precision};
    pub use kami_sched::{
        spgemm_scheduled, spmm_scheduled, BlockWork, Decomposition, PlanCache, SchedError,
        ScheduleReport, Scheduled, Scheduler, SparseWork,
    };
    pub use kami_serve::{
        Completed, CompletionPath, FleetConfig, FleetServer, FleetSpec, FleetTicket, RoutingPolicy,
        ServeError, ServeOutput, ServeRequest, Server, ServerConfig, Ticket,
    };
    pub use kami_sparse::{spgemm, spmm::spmm, BlockOrder, BlockSparseMatrix, SparseError};
}
